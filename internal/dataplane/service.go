package dataplane

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/thresh"
)

// Config wires one node's data-plane service into its surroundings.
// The service is transport-agnostic: peer traffic goes through Send,
// auxiliary DKGs are requested through Provision/Submit, and retries
// are scheduled through Defer — all supplied by the runtime (the
// simulator-backed facade or the TCP serve path).
type Config struct {
	Group *group.Group
	Self  msg.NodeID
	N, T  int
	Peers []msg.NodeID // every participant, including Self

	// Send delivers a peer message on the data-plane session. Both
	// runtimes enqueue asynchronously, so it may be called while the
	// service lock is held.
	Send func(to msg.NodeID, body msg.Body)

	// Provision arranges for the listed auxiliary DKG sessions to run
	// on every node, eventually reaching each node's InstallAux. When
	// nil the default applies: Submit each session locally and
	// broadcast a Prepare to all peers.
	Provision func(key msg.SessionID, sids []msg.SessionID)

	// Submit runs one auxiliary DKG locally (the Prepare handler and
	// the default Provision use it). It must be idempotent per sid.
	Submit func(sid msg.SessionID)

	// Defer schedules fn after roughly RetryDelay (retry/batch
	// timers). nil disables timers; the runtime then pumps stalled
	// requests via Kick.
	Defer func(delay time.Duration, fn func())

	// Rand supplies DLEQ nonces for partial decryptions.
	Rand io.Reader

	// Now is the admission-control clock (defaults to time.Now).
	Now func() time.Time

	// NonceTarget is the reservoir of pre-generated signing nonces
	// kept per key (default 2). BeaconAhead is the beacon look-ahead
	// window provisioned past the highest requested round (default 2).
	NonceTarget int
	BeaconAhead int

	// MaxBatch is the size watermark: enqueueing the MaxBatch-th
	// same-key request flushes the batch immediately (default 8).
	MaxBatch int

	// MaxPending bounds queued+in-flight requests per key; beyond it
	// requests are shed with ErrOverloaded (default 1024).
	MaxPending int

	// Rate/Burst configure the per-key token bucket in requests per
	// second; Rate 0 disables rate limiting.
	Rate  float64
	Burst int

	// RetryDelay is the stall-retry interval (default 50ms).
	RetryDelay time.Duration

	// CacheSize bounds the aggregator result cache and the peer
	// partial cache, in entries per key (default 1024).
	CacheSize int
}

func (c *Config) applyDefaults() {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.NonceTarget <= 0 {
		c.NonceTarget = 2
	}
	if c.BeaconAhead <= 0 {
		c.BeaconAhead = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
}

// Stats counts service activity (monotonic).
type Stats struct {
	Requests      uint64 // admitted client operations
	Shed          uint64 // admission-control rejections (= ShedRate + ShedBacklog)
	ShedRate      uint64 // of those, token-bucket rejections
	ShedBacklog   uint64 // of those, pending-queue-bound rejections
	ShedState     uint64 // rejections by key state (retiring / unknown key)
	Batches       uint64 // partial-request batches fanned out
	Items         uint64 // items across those batches
	CacheHits     uint64 // aggregator results served from cache
	Coalesced     uint64 // duplicate digests attached to in-flight ops
	PeerItems     uint64 // peer-side items answered
	PeerCacheHits uint64 // of those, served from the partial cache
	Evicted       uint64 // bad partials evicted after verification
}

// auxShare is this node's share of a completed auxiliary DKG. Nonce
// shares are consumed (nilled) after serving one digest; the entry
// itself stays as a tombstone so a session ID can never be re-run and
// re-used (see the package comment's nonce-reuse invariant). The
// partial produced at consumption is kept for replay — re-asks for the
// same digest must answer from here, keyed by (session, digest),
// because different aggregators use different nonce sessions for the
// same request digest.
type auxShare struct {
	share    *big.Int
	v        *commit.Vector
	consumed bool
	digest   [32]byte // digest the nonce was consumed for
	sigma    *big.Int // the partial served for that digest
}

// Service is one node's data plane: it serves partial operations to
// aggregating peers and aggregates partials for its own clients.
// All methods are safe for concurrent use.
type Service struct {
	cfg Config
	gr  *group.Group

	mu      sync.Mutex
	keys    map[uint64]*serveKey // by low-24-bit key session ID
	aux     map[msg.SessionID]*auxShare
	auxWait map[msg.SessionID]bool // submitted, not yet installed
	timers  map[uint64]bool        // keys with an armed retry timer
	lag     *poly.LagrangeCache    // combine coefficients at 0, by responder set
	stats   Stats
	closed  bool
}

// NewService builds a service. Keys are added with InstallKey as
// their DKG sessions complete.
func NewService(cfg Config) *Service {
	cfg.applyDefaults()
	return &Service{
		cfg:     cfg,
		gr:      cfg.Group,
		keys:    make(map[uint64]*serveKey),
		aux:     make(map[msg.SessionID]*auxShare),
		auxWait: make(map[msg.SessionID]bool),
		timers:  make(map[uint64]bool),
		lag:     poly.NewLagrangeCache(cfg.Group.Q(), 0),
	}
}

// Stats returns a snapshot of the activity counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// InstallKey registers a completed DKG session as a serving key in
// state Ready. Re-installing (proactive share renewal) replaces the
// share and commitment and invalidates the peer partial cache — old
// partials would no longer interpolate with new-epoch ones.
func (s *Service) InstallKey(id msg.SessionID, share *big.Int, v *commit.Vector) (KeyInfo, error) {
	if uint64(id) >= 1<<24 {
		return KeyInfo{}, fmt.Errorf("dataplane: key session %d exceeds 24-bit aux derivation range", id)
	}
	if share == nil || v == nil || !v.VerifyShare(int64(s.cfg.Self), share) {
		return KeyInfo{}, fmt.Errorf("dataplane: key %d share fails commitment check", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.keys[uint64(id)]
	if k == nil {
		k = &serveKey{
			id:         id,
			inflight:   make(map[[32]byte]*request),
			results:    newRing[Result](s.cfg.CacheSize),
			suspects:   make(map[msg.NodeID]bool),
			partials:   newRing[RespItem](s.cfg.CacheSize),
			nonceFloor: make(map[msg.NodeID]uint64),
		}
		s.keys[uint64(id)] = k
	} else {
		// Renewal epoch: cached partials mix epochs; drop them.
		k.partials = newRing[RespItem](s.cfg.CacheSize)
	}
	k.share = share
	k.v = v
	k.pk = v.PublicKey()
	// A serving key's pk is the one fixed full-width base every batch
	// verification collapses onto; precomputed tables turn that term
	// into short table lookups on the shared multi-exp chain.
	s.cfg.Group.Precompute(k.pk)
	return s.infoLocked(k), nil
}

func (s *Service) infoLocked(k *serveKey) KeyInfo {
	return KeyInfo{ID: k.id, PublicKey: k.pk, V: k.v, N: s.cfg.N, T: s.cfg.T, State: k.state}
}

// KeyInfo describes an installed key.
func (s *Service) KeyInfo(id msg.SessionID) (KeyInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.keys[uint64(id)]
	if k == nil {
		return KeyInfo{}, false
	}
	return s.infoLocked(k), true
}

// Retire moves a key to Retiring: new client requests are rejected,
// in-flight ones drain, and peer partials are still served so other
// aggregators can complete their combinations.
func (s *Service) Retire(id msg.SessionID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k := s.keys[uint64(id)]; k != nil {
		k.state = StateRetiring
	}
}

// Digests. The request digest is the dedup/cache key: it covers op,
// key and operands — never a client request ID — so duplicate
// submissions coalesce onto one in-flight operation.

// SignDigest derives the request digest of a signing request.
func SignDigest(key msg.SessionID, message []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("dkgdp/sign/v1"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(key))
	h.Write(b[:])
	h.Write(message)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// DecryptDigest derives the request digest of a decryption request.
func DecryptDigest(key msg.SessionID, c1, c2 []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("dkgdp/decrypt/v1"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(key))
	h.Write(b[:])
	binary.BigEndian.PutUint32(b[:4], uint32(len(c1)))
	h.Write(b[:4])
	h.Write(c1)
	h.Write(c2)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// BeaconDigest derives the request digest of a beacon-round request.
func BeaconDigest(key msg.SessionID, round uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte("dkgdp/beacon/v1"))
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], uint64(key))
	binary.BigEndian.PutUint64(b[8:], round)
	h.Write(b[:])
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// encodeCiphertext encodes (C1, C2) as two length-prefixed compressed
// elements — the OpDecrypt payload.
func encodeCiphertext(gr *group.Group, ct thresh.Ciphertext) []byte {
	w := msg.NewWriter(2 * (4 + gr.CompressedLen()))
	w.Blob(gr.EncodeCompressed(ct.C1))
	w.Blob(gr.EncodeCompressed(ct.C2))
	return w.Bytes()
}

func decodeCiphertext(gr *group.Group, data []byte) (thresh.Ciphertext, error) {
	r := msg.NewReader(data)
	b1 := r.Blob()
	b2 := r.Blob()
	if err := r.Done(); err != nil {
		return thresh.Ciphertext{}, err
	}
	c1, err := gr.DecodeCompressed(b1)
	if err != nil {
		return thresh.Ciphertext{}, err
	}
	c2, err := gr.DecodeCompressed(b2)
	if err != nil {
		return thresh.Ciphertext{}, err
	}
	return thresh.Ciphertext{C1: c1, C2: c2}, nil
}

// Sign requests a threshold signature over message under key. The
// terminal outcome is delivered through cb; a non-nil return means
// the request was rejected synchronously (admission control, unknown
// or retiring key) and cb will not be called. The request is queued
// until Flush, the MaxBatch watermark or the batch timer dispatches
// it.
func (s *Service) Sign(key msg.SessionID, message []byte, cb Callback) error {
	return s.enqueue(key, &request{
		digest:  SignDigest(key, message),
		op:      OpSign,
		payload: append([]byte(nil), message...),
	}, cb)
}

// Decrypt requests a verified threshold decryption of ct under key.
func (s *Service) Decrypt(key msg.SessionID, ct thresh.Ciphertext, cb Callback) error {
	if !s.gr.IsElement(ct.C1) || !s.gr.IsElement(ct.C2) {
		return thresh.ErrBadCipher
	}
	enc := encodeCiphertext(s.gr, ct)
	return s.enqueue(key, &request{
		digest:  DecryptDigest(key, s.gr.EncodeCompressed(ct.C1), s.gr.EncodeCompressed(ct.C2)),
		op:      OpDecrypt,
		payload: enc,
		ct:      ct,
	}, cb)
}

// Beacon requests the round-th beacon output of key's beacon
// sequence. Rounds are 1-based; outputs are cached, so re-requesting
// a round is idempotent.
func (s *Service) Beacon(key msg.SessionID, round uint64, cb Callback) error {
	if round == 0 || round >= 1<<24 {
		return fmt.Errorf("dataplane: beacon round %d out of range", round)
	}
	return s.enqueue(key, &request{
		digest: BeaconDigest(key, round),
		op:     OpOpen,
		round:  round,
		sid:    BeaconSID(key, round),
	}, cb)
}

// enqueue runs admission, dedup and queuing for one request.
func (s *Service) enqueue(key msg.SessionID, req *request, cb Callback) error {
	var fire []func()
	var acts []func()
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		k := s.keys[uint64(key)]
		if k == nil {
			s.stats.ShedState++
			return ErrUnknownKey
		}
		if k.state == StateRetiring {
			s.stats.ShedState++
			return ErrRetiring
		}
		if k.state == StateReady {
			s.activateLocked(k, &acts)
		}
		if res, ok := k.results.get(req.digest); ok {
			s.stats.CacheHits++
			fire = append(fire, func() { cb(res, nil) })
			return nil
		}
		if cur := k.inflight[req.digest]; cur != nil && !cur.done {
			s.stats.Coalesced++
			cur.cbs = append(cur.cbs, cb)
			return nil
		}
		for _, q := range k.queue {
			if q.digest == req.digest {
				s.stats.Coalesced++
				q.cbs = append(q.cbs, cb)
				return nil
			}
		}
		if err := k.admit(s.cfg.Now(), s.cfg.Rate, s.cfg.Burst, s.cfg.MaxPending); err != nil {
			s.stats.Shed++
			if errors.Is(err, errShedBacklog) {
				s.stats.ShedBacklog++
			} else {
				s.stats.ShedRate++
			}
			return err
		}
		s.stats.Requests++
		k.served++
		req.cbs = append(req.cbs, cb)
		k.queue = append(k.queue, req)
		if req.op == OpOpen {
			s.ensureBeaconLocked(k, req.round, &acts)
		}
		if len(k.queue) >= s.cfg.MaxBatch {
			s.flushLocked(k, &fire, &acts)
		}
		return nil
	}()
	for _, f := range fire {
		f()
	}
	for _, a := range acts {
		a()
	}
	return err
}

// Flush dispatches key's queued requests now (callers that batch
// explicitly — SignBatch, the client server when a connection's read
// buffer drains — use it instead of waiting for the watermark).
func (s *Service) Flush(key msg.SessionID) {
	var fire []func()
	var acts []func()
	s.mu.Lock()
	if k := s.keys[uint64(key)]; k != nil {
		s.flushLocked(k, &fire, &acts)
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
	for _, a := range acts {
		a()
	}
}

// Kick retries stalled work for key: re-fans out unanswered in-flight
// items to every eligible peer and re-provisions starved nonce
// reservoirs. Runtimes without timers (the deterministic simulator)
// call it when the event queue drains with requests still pending.
func (s *Service) Kick(key msg.SessionID) {
	var fire []func()
	var acts []func()
	s.mu.Lock()
	if k := s.keys[uint64(key)]; k != nil {
		s.timers[uint64(key)] = false
		s.flushLocked(k, &fire, &acts) // dispatch anything still queued
		s.kickLocked(k, &fire, &acts)
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
	for _, a := range acts {
		a()
	}
}

// Close fails all pending work and stops accepting requests.
func (s *Service) Close() {
	var fire []func()
	s.mu.Lock()
	s.closed = true
	for _, k := range s.keys {
		for _, req := range k.queue {
			req := req
			for _, cb := range req.cbs {
				cb := cb
				fire = append(fire, func() { cb(Result{}, ErrClosed) })
			}
			req.done = true
		}
		k.queue = nil
		for _, req := range k.inflight {
			if req.done {
				continue
			}
			req.done = true
			for _, cb := range req.cbs {
				cb := cb
				fire = append(fire, func() { cb(Result{}, ErrClosed) })
			}
		}
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// activateLocked moves a Ready key to Serving and provisions its
// auxiliary sessions: the nonce reservoir and the beacon window.
func (s *Service) activateLocked(k *serveKey, acts *[]func()) {
	k.state = StateServing
	s.ensureNoncesLocked(k, 0, acts)
	s.ensureBeaconLocked(k, 0, acts)
}

// Activate eagerly moves a key to Serving (provisioning its aux
// sessions) instead of waiting for the first request.
func (s *Service) Activate(id msg.SessionID) {
	var acts []func()
	s.mu.Lock()
	if k := s.keys[uint64(id)]; k != nil && k.state == StateReady {
		s.activateLocked(k, &acts)
	}
	s.mu.Unlock()
	for _, a := range acts {
		a()
	}
}

// ensureNoncesLocked tops the reservoir up to NonceTarget plus the
// immediate need.
func (s *Service) ensureNoncesLocked(k *serveKey, need int, acts *[]func()) {
	want := need + s.cfg.NonceTarget - len(k.reservoir) - k.provisioning
	if want <= 0 {
		return
	}
	sids := make([]msg.SessionID, 0, want)
	for i := 0; i < want; i++ {
		sids = append(sids, NonceSID(k.id, s.cfg.Self, k.nonceCtr))
		k.nonceCtr++
	}
	k.provisioning += len(sids)
	s.provisionLocked(k.id, sids, acts)
}

// ensureBeaconLocked provisions beacon sessions up to
// max(round, highest so far) + BeaconAhead.
func (s *Service) ensureBeaconLocked(k *serveKey, round uint64, acts *[]func()) {
	hi := k.beaconHi
	if round > hi {
		hi = round
	}
	hi += uint64(s.cfg.BeaconAhead)
	if hi <= k.beaconHi {
		return
	}
	sids := make([]msg.SessionID, 0, hi-k.beaconHi)
	for r := k.beaconHi + 1; r <= hi; r++ {
		sids = append(sids, BeaconSID(k.id, r))
	}
	k.beaconHi = hi
	s.provisionLocked(k.id, sids, acts)
}

// provisionLocked queues the aux-session provisioning action for
// execution outside the lock (Provision may run entire DKGs
// synchronously and re-enter InstallAux).
func (s *Service) provisionLocked(key msg.SessionID, sids []msg.SessionID, acts *[]func()) {
	if len(sids) == 0 {
		return
	}
	if s.cfg.Provision != nil {
		*acts = append(*acts, func() { s.cfg.Provision(key, sids) })
		return
	}
	for _, sid := range sids {
		s.auxWait[sid] = true
	}
	*acts = append(*acts, func() {
		if s.cfg.Submit != nil {
			for _, sid := range sids {
				s.cfg.Submit(sid)
			}
		}
		prep := &Prepare{Key: key, Sids: sids}
		for _, p := range s.cfg.Peers {
			if p != s.cfg.Self {
				s.cfg.Send(p, prep)
			}
		}
	})
}

// InstallAux registers this node's share of a completed auxiliary DKG
// (nonce or beacon session). Duplicate installs are ignored; a
// session ID that was already consumed can never be re-installed, so
// re-running a nonce session cannot break the one-digest-per-nonce
// invariant.
//
// The share is not re-verified against the commitment here: the DKG
// that produced it already checked it (HybridVSS verifies every
// subshare), and the serving path is robust to a bad one anyway — a
// partial built from a wrong share fails BatchVerifyPartials at the
// aggregator (sign), the DLEQ check (decrypt) or the per-share
// commitment check (beacon open), which names and evicts the sender.
// Skipping the t-step commitment evaluation per node per nonce
// roughly halves the cost of keeping the reservoir full (E20).
func (s *Service) InstallAux(sid msg.SessionID, share *big.Int, v *commit.Vector) {
	if !IsAux(sid) || share == nil || v == nil || !s.gr.IsScalar(share) {
		return
	}
	var fire []func()
	var acts []func()
	s.mu.Lock()
	if _, dup := s.aux[sid]; dup {
		s.mu.Unlock()
		return
	}
	k := s.keys[AuxKey(sid)]
	if k != nil && !IsBeacon(sid) && NonceCounter(sid) < k.nonceFloor[NonceOwner(sid)] {
		// The session was consumed and its tombstone aged out; letting
		// it back in would re-arm a spent nonce.
		s.mu.Unlock()
		return
	}
	s.aux[sid] = &auxShare{share: share, v: v}
	delete(s.auxWait, sid)
	if k != nil {
		if !IsBeacon(sid) && NonceOwner(sid) == s.cfg.Self {
			k.reservoir = append(k.reservoir, sid)
			if k.provisioning > 0 {
				k.provisioning--
			}
		}
		// Queued requests may have been waiting for exactly this
		// session (sign: nonce starvation; open: beacon round).
		s.flushLocked(k, &fire, &acts)
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
	for _, a := range acts {
		a()
	}
}

// flushLocked dispatches every ready queued request as one batch:
// self partials are computed locally, then a single PartialReq per
// fan-out target carries all items.
func (s *Service) flushLocked(k *serveKey, fire, acts *[]func()) {
	if len(k.queue) == 0 {
		return
	}
	var ready []*request
	var waiting []*request
	starved := 0
	for _, req := range k.queue {
		switch req.op {
		case OpSign:
			if req.sid == 0 {
				if len(k.reservoir) == 0 {
					starved++
					waiting = append(waiting, req)
					continue
				}
				req.sid = k.reservoir[0]
				k.reservoir = k.reservoir[1:]
			}
			aux := s.aux[req.sid]
			if aux == nil { // reservoir invariant: installed before listed
				waiting = append(waiting, req)
				continue
			}
			req.nonceV = aux.v
			req.challenge = thresh.Challenge(s.gr, aux.v.PublicKey(), k.pk, req.payload)
			ready = append(ready, req)
		case OpOpen:
			aux := s.aux[req.sid]
			if aux == nil {
				waiting = append(waiting, req)
				continue
			}
			req.nonceV = aux.v
			ready = append(ready, req)
		default:
			ready = append(ready, req)
		}
	}
	k.queue = waiting
	if starved > 0 || len(k.reservoir)+k.provisioning < s.cfg.NonceTarget {
		// Refill proactively: consuming a nonce dips the reservoir, and
		// a starved request is waiting for the refill to land.
		s.ensureNoncesLocked(k, starved, acts)
	}
	if len(ready) == 0 {
		return
	}
	items := make([]ReqItem, 0, len(ready))
	for _, req := range ready {
		req.partials = make(map[msg.NodeID]thresh.PartialSig, s.cfg.T+2)
		req.decParts = make(map[msg.NodeID]thresh.PartialDecryption, s.cfg.T+2)
		req.openPts = make(map[msg.NodeID]*big.Int, s.cfg.T+2)
		req.asked = make(map[msg.NodeID]bool, s.cfg.N)
		k.inflight[req.digest] = req
		items = append(items, ReqItem{Digest: req.digest, Op: req.op, Sid: req.sid, Payload: req.payload})
	}
	// Self partials go through the same answer path as peer requests,
	// sharing the consume-once nonce accounting and the partial cache.
	self := make([]RespItem, 0, len(items))
	for _, it := range items {
		self = append(self, s.answerItemLocked(k, it))
	}
	s.recordItemsLocked(k, s.cfg.Self, self, fire, acts)
	targets := s.fanoutTargetsLocked(k, s.cfg.T+1)
	req := &PartialReq{Key: k.id, Items: items}
	for _, to := range targets {
		for _, r := range ready {
			r.asked[to] = true
		}
		s.cfg.Send(to, req)
	}
	s.stats.Batches++
	s.stats.Items += uint64(len(items))
	s.armTimerLocked(k, acts)
}

// fanoutTargetsLocked picks the next width non-suspect peers in
// rotation.
func (s *Service) fanoutTargetsLocked(k *serveKey, width int) []msg.NodeID {
	var cands []msg.NodeID
	for _, p := range s.cfg.Peers {
		if p != s.cfg.Self && !k.suspects[p] {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	if width > len(cands) {
		width = len(cands)
	}
	out := make([]msg.NodeID, 0, width)
	for i := 0; i < width; i++ {
		out = append(out, cands[(k.rotor+i)%len(cands)])
	}
	k.rotor = (k.rotor + width) % len(cands)
	return out
}

// armTimerLocked schedules one retry kick per key while work is in
// flight.
func (s *Service) armTimerLocked(k *serveKey, acts *[]func()) {
	if s.cfg.Defer == nil || s.timers[uint64(k.id)] {
		return
	}
	s.timers[uint64(k.id)] = true
	id := k.id
	*acts = append(*acts, func() {
		s.cfg.Defer(s.cfg.RetryDelay, func() { s.Kick(id) })
	})
}

// kickLocked re-fans out every unanswered in-flight item to all
// eligible peers (idempotent: peers replay cached partials).
func (s *Service) kickLocked(k *serveKey, fire, acts *[]func()) {
	var items []ReqItem
	for _, req := range k.inflight {
		if req.done {
			continue
		}
		items = append(items, ReqItem{Digest: req.digest, Op: req.op, Sid: req.sid, Payload: req.payload})
	}
	if len(items) == 0 {
		return
	}
	preq := &PartialReq{Key: k.id, Items: items}
	sent := false
	for _, p := range s.cfg.Peers {
		if p == s.cfg.Self || k.suspects[p] {
			continue
		}
		for _, req := range k.inflight {
			req.asked[p] = true
		}
		s.cfg.Send(p, preq)
		sent = true
	}
	if sent {
		s.armTimerLocked(k, acts)
	}
}

// HandleMessage is the data-plane session handler: peer requests,
// peer responses and prepare messages.
func (s *Service) HandleMessage(from msg.NodeID, body msg.Body) {
	switch m := body.(type) {
	case *PartialReq:
		s.handlePartialReq(from, m)
	case *PartialResp:
		s.handlePartialResp(from, m)
	case *Prepare:
		s.handlePrepare(from, m)
	}
}

// handlePartialReq answers a peer aggregator's batch.
func (s *Service) handlePartialReq(from msg.NodeID, m *PartialReq) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	k := s.keys[uint64(m.Key)]
	resp := &PartialResp{Key: m.Key, Items: make([]RespItem, 0, len(m.Items))}
	for _, it := range m.Items {
		if k == nil {
			resp.Items = append(resp.Items, RespItem{Digest: it.Digest, Status: StUnknownKey})
			continue
		}
		resp.Items = append(resp.Items, s.answerItemLocked(k, it))
	}
	send := s.cfg.Send
	s.mu.Unlock()
	send(from, resp)
}

// answerItemLocked computes (or replays) one partial operation. Sign
// replays come from the consumed nonce entry itself — cache keyed by
// digest alone would be wrong, since two aggregators use different
// nonce sessions for the same request digest. Decrypt and beacon
// digests fully determine their answers, so they share a plain
// digest-keyed cache.
func (s *Service) answerItemLocked(k *serveKey, it ReqItem) RespItem {
	s.stats.PeerItems++
	out := RespItem{Digest: it.Digest}
	switch it.Op {
	case OpSign:
		aux := s.aux[it.Sid]
		if aux == nil || !IsAux(it.Sid) || IsBeacon(it.Sid) {
			if aux == nil && IsAux(it.Sid) && !IsBeacon(it.Sid) &&
				NonceCounter(it.Sid) < k.nonceFloor[NonceOwner(it.Sid)] {
				// Consumed and aged out of the tombstone ring: the
				// recorded partial is gone, and the nonce can never
				// serve again. Permanent, unlike NotReady.
				out.Status = StRefused
				return out
			}
			out.Status = StNotReady
			return out // not cached: the session may complete later
		}
		if aux.consumed {
			if aux.digest == it.Digest {
				// Re-ask (retry, kick): replay the recorded partial.
				s.stats.PeerCacheHits++
				out.Status = StOK
				out.Sigma = aux.sigma
				return out
			}
			// One nonce, one digest: this nonce already signed a
			// different request.
			out.Status = StRefused
			return out
		}
		c := thresh.Challenge(s.gr, aux.v.PublicKey(), k.pk, it.Payload)
		p := thresh.PartialSignPre(s.gr, s.cfg.Self, k.share, aux.share, c)
		aux.consumed = true
		aux.digest = it.Digest
		aux.sigma = p.Sigma
		aux.share = nil // drop the secret; the partial is all that remains
		aux.v = nil     // replay needs only sigma; aggregators hold their own copy
		k.consumedRing = append(k.consumedRing, it.Sid)
		if len(k.consumedRing) > s.cfg.CacheSize {
			old := k.consumedRing[0]
			k.consumedRing = k.consumedRing[1:]
			delete(s.aux, old)
			owner := NonceOwner(old)
			if f := NonceCounter(old) + 1; f > k.nonceFloor[owner] {
				k.nonceFloor[owner] = f
			}
		}
		out.Status = StOK
		out.Sigma = p.Sigma
		return out
	case OpDecrypt:
		if cached, ok := k.partials.get(it.Digest); ok {
			s.stats.PeerCacheHits++
			return cached
		}
		ct, err := decodeCiphertext(s.gr, it.Payload)
		if err != nil {
			out.Status = StBadOp
			return out
		}
		pd, err := thresh.PartialDecrypt(s.gr, thresh.KeyShare{Self: s.cfg.Self, Share: k.share, V: k.v}, ct, s.cfg.Rand)
		if err != nil {
			out.Status = StBadOp
			return out
		}
		out.Status = StOK
		out.D = pd.D
		out.E = pd.Proof.E
		out.Z = pd.Proof.Z
	case OpOpen:
		if cached, ok := k.partials.get(it.Digest); ok {
			s.stats.PeerCacheHits++
			return cached
		}
		aux := s.aux[it.Sid]
		if aux == nil || !IsBeacon(it.Sid) {
			out.Status = StNotReady
			return out
		}
		// Beacon shares are opened by design; no consumption.
		out.Status = StOK
		out.Share = aux.share
	default:
		out.Status = StBadOp
		return out
	}
	k.partials.put(it.Digest, out)
	return out
}

// handlePartialResp folds a peer's partials into the aggregator state.
func (s *Service) handlePartialResp(from msg.NodeID, m *PartialResp) {
	var fire []func()
	var acts []func()
	s.mu.Lock()
	if k := s.keys[uint64(m.Key)]; k != nil && !s.closed {
		s.recordItemsLocked(k, from, m.Items, &fire, &acts)
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
	for _, a := range acts {
		a()
	}
}

// handlePrepare submits requested aux sessions, at most once each.
func (s *Service) handlePrepare(_ msg.NodeID, m *Prepare) {
	if s.cfg.Submit == nil {
		return
	}
	var todo []msg.SessionID
	s.mu.Lock()
	for _, sid := range m.Sids {
		if !IsAux(sid) || s.auxWait[sid] {
			continue
		}
		if _, have := s.aux[sid]; have {
			continue
		}
		s.auxWait[sid] = true
		todo = append(todo, sid)
	}
	submit := s.cfg.Submit
	s.mu.Unlock()
	for _, sid := range todo {
		submit(sid)
	}
}

// recordItemsLocked records a sender's items and completes every
// request that reaches the t+1 threshold. Sign completions across
// the same delivery are verified together: optimistic unchecked
// combines, then one batched RLC signature verification, with
// per-item fallback and bad-partial eviction only on failure.
func (s *Service) recordItemsLocked(k *serveKey, from msg.NodeID, items []RespItem, fire *[]func(), acts *[]func()) {
	t := s.cfg.T
	var signReady []*request
	for _, it := range items {
		req := k.inflight[it.Digest]
		if req == nil || req.done {
			continue
		}
		switch it.Status {
		case StOK:
		case StRefused, StUnknownKey:
			// Permanent for this request: the sender will never
			// contribute, which feeds the give-up accounting.
			if req.refused == nil {
				req.refused = make(map[msg.NodeID]bool)
			}
			req.refused[from] = true
			continue
		default:
			// NotReady is transient: the aux session may still
			// complete there; the retry kick re-asks.
			continue
		}
		switch req.op {
		case OpSign:
			if it.Sigma == nil || !s.gr.IsScalar(it.Sigma) {
				continue
			}
			if _, dup := req.partials[from]; dup {
				continue
			}
			req.partials[from] = thresh.PartialSig{Signer: from, Sigma: it.Sigma}
			if len(req.partials) >= t+1 {
				signReady = append(signReady, req)
			}
		case OpDecrypt:
			if it.D == nil || it.E == nil || it.Z == nil ||
				!s.gr.IsElement(it.D) || !s.gr.IsScalar(it.E) || !s.gr.IsScalar(it.Z) {
				continue
			}
			if _, dup := req.decParts[from]; dup {
				continue
			}
			req.decParts[from] = thresh.PartialDecryption{
				Decryptor: from, D: it.D, Proof: thresh.DLEQProof{E: it.E, Z: it.Z},
			}
			if len(req.decParts) >= t+1 {
				s.finishDecryptLocked(k, req, fire, acts)
			}
		case OpOpen:
			if it.Share == nil || !s.gr.IsScalar(it.Share) {
				continue
			}
			if _, dup := req.openPts[from]; dup {
				continue
			}
			// Beacon shares self-verify against the round commitment;
			// reject forgeries at the door so t+1 recorded ⇒ combinable.
			if !req.nonceV.VerifyShare(int64(from), it.Share) {
				s.evictBadLocked(k, req, []msg.NodeID{from})
				continue
			}
			req.openPts[from] = it.Share
			if len(req.openPts) >= t+1 {
				s.finishOpenLocked(k, req, fire)
			}
		}
	}
	if len(signReady) > 0 {
		s.finishSignsLocked(k, signReady, fire, acts)
	}
}

// finishSignsLocked completes signing requests that reached t+1
// partials: optimistic combine, batched final verification, fallback
// to identified verification on failure.
func (s *Service) finishSignsLocked(k *serveKey, reqs []*request, fire, acts *[]func()) {
	t := s.cfg.T
	type cand struct {
		req *request
		sig thresh.Signature
	}
	cands := make([]cand, 0, len(reqs))
	for _, req := range reqs {
		list := make([]thresh.PartialSig, 0, len(req.partials))
		for _, p := range req.partials {
			list = append(list, p)
		}
		sig, err := thresh.CombineUncheckedWith(s.gr, req.nonceV, t, list, s.lag)
		if err != nil {
			continue // lost partials since threshold check; retry later
		}
		cands = append(cands, cand{req: req, sig: sig})
	}
	if len(cands) == 0 {
		return
	}
	msgs := make([][]byte, len(cands))
	sigs := make([]thresh.Signature, len(cands))
	cs := make([]*big.Int, len(cands))
	for i, c := range cands {
		msgs[i] = c.req.payload
		sigs[i] = c.sig
		// Computed at flush time for this aggregator's own partial;
		// reusing it keeps the challenge hash off the verify path.
		cs[i] = c.req.challenge
	}
	if thresh.BatchVerifySignaturesPre(s.gr, k.pk, msgs, cs, sigs) {
		for _, c := range cands {
			s.completeLocked(k, c.req, Result{Sig: c.sig}, nil, fire)
		}
		return
	}
	// At least one bad partial slipped into an optimistic combine:
	// verify per item; failures get the identifying path — batch
	// partial verification names the bad signers, who are evicted and
	// excluded from future fan-outs, then the good partials combine.
	for _, c := range cands {
		if thresh.Verify(s.gr, k.pk, c.req.payload, c.sig) {
			s.completeLocked(k, c.req, Result{Sig: c.sig}, nil, fire)
			continue
		}
		req := c.req
		list := make([]thresh.PartialSig, 0, len(req.partials))
		for _, p := range req.partials {
			list = append(list, p)
		}
		valid := thresh.BatchVerifyPartials(s.gr, k.v, req.nonceV, req.payload, list)
		good := make([]thresh.PartialSig, 0, len(list))
		var bad []msg.NodeID
		for i, p := range list {
			if valid[i] {
				good = append(good, p)
			} else {
				bad = append(bad, p.Signer)
			}
		}
		s.evictBadLocked(k, req, bad)
		if len(good) >= t+1 {
			sig, err := thresh.CombineUnchecked(s.gr, req.nonceV, t, good)
			if err == nil && thresh.Verify(s.gr, k.pk, req.payload, sig) {
				s.completeLocked(k, req, Result{Sig: sig}, nil, fire)
				continue
			}
		}
		s.evictLocked(k, req, &thresh.PartialsError{Bad: bad, Valid: len(good), Needed: t + 1}, fire, acts)
	}
}

// evictBadLocked marks nodes as suspects (counted once each) and
// drops their contributions to the request.
func (s *Service) evictBadLocked(k *serveKey, req *request, bad []msg.NodeID) {
	for _, b := range bad {
		if !k.suspects[b] {
			k.suspects[b] = true
			s.stats.Evicted++
		}
		delete(req.partials, b)
		delete(req.decParts, b)
		delete(req.openPts, b)
	}
}

// evictLocked processes a failed combine: senders named by a
// PartialsError become suspects, and the request is re-fanned out —
// or failed when the threshold is provably out of reach.
func (s *Service) evictLocked(k *serveKey, req *request, err error, fire, acts *[]func()) {
	if pe, ok := err.(*thresh.PartialsError); ok {
		s.evictBadLocked(k, req, pe.Bad)
	}
	// The threshold is still reachable while recorded contributions
	// plus peers that could yet answer — not suspect, not permanently
	// refused for this request — cover t+1. Peers already asked still
	// count: their answers may be in flight, and re-asks replay
	// idempotently.
	possible := req.recorded()
	for _, p := range s.cfg.Peers {
		if p == s.cfg.Self || k.suspects[p] || req.refused[p] || req.contributed(p) {
			continue
		}
		possible++
	}
	if possible < s.cfg.T+1 {
		s.completeLocked(k, req, Result{}, fmt.Errorf("%w: %v", ErrUnavailable, err), fire)
		return
	}
	s.kickLocked(k, fire, acts)
}

// finishDecryptLocked combines decryption partials (verification
// happens inside CombineDecrypt).
func (s *Service) finishDecryptLocked(k *serveKey, req *request, fire, acts *[]func()) {
	parts := make([]thresh.PartialDecryption, 0, len(req.decParts))
	for _, pd := range req.decParts {
		parts = append(parts, pd)
	}
	plain, err := thresh.CombineDecrypt(s.gr, k.v, s.cfg.T, req.ct, parts)
	if err != nil {
		s.evictLocked(k, req, err, fire, acts)
		return
	}
	s.completeLocked(k, req, Result{Plain: plain}, nil, fire)
}

// finishOpenLocked interpolates a beacon opening from verified
// shares and derives the round output.
func (s *Service) finishOpenLocked(k *serveKey, req *request, fire *[]func()) {
	pts := make([]poly.Point, 0, len(req.openPts))
	for id, sh := range req.openPts {
		pts = append(pts, poly.Point{X: int64(id), Y: sh})
		if len(pts) == s.cfg.T+1 {
			break
		}
	}
	opened, err := poly.Interpolate(s.gr.Q(), pts, 0)
	if err != nil {
		s.completeLocked(k, req, Result{}, err, fire)
		return
	}
	if !s.gr.GExp(opened).Equal(req.nonceV.PublicKey()) {
		// Cannot happen with per-share verification; defensive.
		s.completeLocked(k, req, Result{}, fmt.Errorf("%w: beacon opening mismatch", ErrUnavailable), fire)
		return
	}
	res := Result{Beacon: BeaconResult{
		Round:       req.round,
		Output:      thresh.BeaconOutput(s.gr, req.round, opened),
		Opened:      opened,
		EphemeralPK: req.nonceV.PublicKey(),
	}}
	s.completeLocked(k, req, res, nil, fire)
}

// completeLocked finishes one request: caches the result, removes it
// from the in-flight set and queues its callbacks.
func (s *Service) completeLocked(k *serveKey, req *request, res Result, err error, fire *[]func()) {
	if req.done {
		return
	}
	req.done = true
	delete(k.inflight, req.digest)
	if err == nil {
		k.results.put(req.digest, res)
	}
	for _, cb := range req.cbs {
		cb := cb
		*fire = append(*fire, func() { cb(res, err) })
	}
}

package dataplane

import (
	"fmt"
	"math/big"
	"time"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/thresh"
)

// KeyState is the serving lifecycle of an installed key.
type KeyState int

// Lifecycle states. Install yields Ready; the first request (or
// Activate) provisions aux sessions and moves to Serving; Retire
// sheds new requests while in-flight ones drain and peer partials
// keep being served.
const (
	StateReady KeyState = iota
	StateServing
	StateRetiring
)

// String implements fmt.Stringer.
func (s KeyState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateServing:
		return "serving"
	case StateRetiring:
		return "retiring"
	default:
		return "unknown"
	}
}

// KeyInfo is the public description of an installed key.
type KeyInfo struct {
	ID        msg.SessionID
	PublicKey group.Element
	V         *commit.Vector
	N, T      int
	State     KeyState
}

// Result is the terminal outcome of one data-plane request; exactly
// one field group is populated according to the request's op.
type Result struct {
	Sig    thresh.Signature // OpSign
	Plain  group.Element    // OpDecrypt
	Beacon BeaconResult     // OpOpen
}

// BeaconResult is one beacon round's output plus the opening that
// produced it: Output = BeaconOutput(round, Opened) with
// g^Opened = EphemeralPK, the round session's public key.
type BeaconResult struct {
	Round       uint64
	Output      [32]byte
	Opened      *big.Int
	EphemeralPK group.Element
}

// Callback delivers a request's terminal result (or error). It is
// invoked outside the service lock and must not block.
type Callback func(Result, error)

// request is one in-flight (or queued) aggregated operation.
type request struct {
	digest  [32]byte
	op      uint8
	payload []byte            // sign: message; decrypt: encoded ciphertext
	ct      thresh.Ciphertext // decrypt operands
	round   uint64            // open round

	sid       msg.SessionID  // assigned nonce session (sign) / beacon session (open)
	nonceV    *commit.Vector // aggregator's view of the nonce commitment
	challenge *big.Int       // sign: c = H(R ‖ pk ‖ m), computed once

	partials map[msg.NodeID]thresh.PartialSig
	decParts map[msg.NodeID]thresh.PartialDecryption
	openPts  map[msg.NodeID]*big.Int
	asked    map[msg.NodeID]bool
	refused  map[msg.NodeID]bool // permanent per-request refusals

	cbs  []Callback
	done bool
}

// recorded counts the contributions collected so far for the
// request's op.
func (r *request) recorded() int {
	switch r.op {
	case OpDecrypt:
		return len(r.decParts)
	case OpOpen:
		return len(r.openPts)
	default:
		return len(r.partials)
	}
}

// contributed reports whether p's contribution is already recorded.
func (r *request) contributed(p msg.NodeID) bool {
	switch r.op {
	case OpDecrypt:
		_, ok := r.decParts[p]
		return ok
	case OpOpen:
		_, ok := r.openPts[p]
		return ok
	default:
		_, ok := r.partials[p]
		return ok
	}
}

// serveKey is the per-key serving state (aggregator and peer sides).
type serveKey struct {
	id    msg.SessionID
	share *big.Int
	v     *commit.Vector
	pk    group.Element
	state KeyState

	// Aggregator side.
	reservoir    []msg.SessionID // completed nonce sessions owned by self
	nonceCtr     uint64
	provisioning int // nonce sessions requested but not yet installed
	beaconHi     uint64
	// Consumed-nonce bookkeeping: tombstones replay the recorded
	// partial for retries, but a sustained-load key would accrete one
	// forever per signature. consumedRing bounds them FIFO; when a
	// tombstone ages out, its counter folds into nonceFloor[owner] so
	// the session ID can still never be re-installed or re-answered
	// (the consume-once invariant outlives the tombstone).
	consumedRing []msg.SessionID
	nonceFloor   map[msg.NodeID]uint64 // per owner: counters below are dead
	queue        []*request
	inflight     map[[32]byte]*request
	results      *ring[Result]
	suspects     map[msg.NodeID]bool
	rotor        int

	// Admission.
	tokens     float64
	lastRefill time.Time
	served     uint64 // requests admitted on this key (telemetry)

	// Peer side: partial-result cache keyed by request digest.
	partials *ring[RespItem]
}

// Shed reasons: both unwrap to ErrOverloaded for callers, but the
// admission path tells them apart for the shed-by-reason counters.
var (
	errShedRate    = fmt.Errorf("%w: token bucket empty", ErrOverloaded)
	errShedBacklog = fmt.Errorf("%w: pending queue full", ErrOverloaded)
)

// admit runs per-key admission control: a token bucket for rate and a
// bounded pending queue for backlog. Returns nil when the request may
// enter.
func (k *serveKey) admit(now time.Time, rate float64, burst, maxPending int) error {
	if rate > 0 {
		if k.lastRefill.IsZero() {
			k.tokens = float64(burst)
		} else {
			k.tokens += now.Sub(k.lastRefill).Seconds() * rate
			if k.tokens > float64(burst) {
				k.tokens = float64(burst)
			}
		}
		k.lastRefill = now
		if k.tokens < 1 {
			return errShedRate
		}
		k.tokens--
	}
	if len(k.queue)+len(k.inflight) >= maxPending {
		return errShedBacklog
	}
	return nil
}

// ring is a bounded FIFO map: inserting beyond capacity evicts the
// oldest entry. It backs the aggregator result cache and the peer
// partial cache.
type ring[V any] struct {
	m     map[[32]byte]V
	order [][32]byte
	head  int
	cap   int
}

func newRing[V any](capacity int) *ring[V] {
	return &ring[V]{m: make(map[[32]byte]V, capacity), cap: capacity}
}

func (r *ring[V]) get(k [32]byte) (V, bool) {
	v, ok := r.m[k]
	return v, ok
}

func (r *ring[V]) put(k [32]byte, v V) {
	if _, exists := r.m[k]; exists {
		r.m[k] = v
		return
	}
	if len(r.m) >= r.cap && r.cap > 0 {
		old := r.order[r.head]
		delete(r.m, old)
		r.order[r.head] = k
		r.head = (r.head + 1) % len(r.order)
	} else {
		r.order = append(r.order, k)
	}
	r.m[k] = v
}

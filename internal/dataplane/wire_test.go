package dataplane

import (
	"math/big"
	"testing"

	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
)

func TestSessionIDDerivation(t *testing.T) {
	key := msg.SessionID(0xABCDEF)
	nonce := NonceSID(key, 5, 0x123456)
	if !IsAux(nonce) || IsBeacon(nonce) {
		t.Fatalf("nonce sid %x: IsAux=%v IsBeacon=%v", uint64(nonce), IsAux(nonce), IsBeacon(nonce))
	}
	if AuxKey(nonce) != uint64(key) {
		t.Fatalf("AuxKey = %x, want %x", AuxKey(nonce), uint64(key))
	}
	if NonceOwner(nonce) != 5 {
		t.Fatalf("NonceOwner = %d, want 5", NonceOwner(nonce))
	}

	beacon := BeaconSID(key, 77)
	if !IsAux(beacon) || !IsBeacon(beacon) {
		t.Fatalf("beacon sid %x: IsAux=%v IsBeacon=%v", uint64(beacon), IsAux(beacon), IsBeacon(beacon))
	}
	if AuxKey(beacon) != uint64(key) || BeaconRound(beacon) != 77 {
		t.Fatalf("beacon sid decodes to key %x round %d", AuxKey(beacon), BeaconRound(beacon))
	}

	// Distinct owners/counters/rounds never collide.
	if NonceSID(key, 5, 1) == NonceSID(key, 6, 1) || NonceSID(key, 5, 1) == NonceSID(key, 5, 2) {
		t.Fatal("nonce sid collision")
	}
	if nonce == beacon {
		t.Fatal("nonce/beacon sid collision")
	}
	// Plain key sessions and the peer session are not aux sessions.
	if IsAux(key) || IsAux(PeerSession) {
		t.Fatal("non-aux sid classified as aux")
	}
}

func TestPartialReqRoundtrip(t *testing.T) {
	in := &PartialReq{
		Key: 42,
		Items: []ReqItem{
			{Digest: [32]byte{1, 2, 3}, Op: OpSign, Sid: NonceSID(42, 1, 0), Payload: []byte("hello")},
			{Digest: [32]byte{4}, Op: OpDecrypt, Payload: []byte{0, 0, 0, 1, 9}},
			{Digest: [32]byte{5}, Op: OpOpen, Sid: BeaconSID(42, 3)},
		},
	}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	body, err := decodePartialReq(data)
	if err != nil {
		t.Fatal(err)
	}
	out := body.(*PartialReq)
	if out.Key != in.Key || len(out.Items) != len(in.Items) {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	for i := range in.Items {
		a, b := in.Items[i], out.Items[i]
		if a.Digest != b.Digest || a.Op != b.Op || a.Sid != b.Sid || string(a.Payload) != string(b.Payload) {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestPartialRespRoundtrip(t *testing.T) {
	gr := group.Test256()
	in := &PartialResp{
		Key: 7,
		Items: []RespItem{
			{Digest: [32]byte{1}, Status: StOK, Sigma: big.NewInt(12345)},
			{Digest: [32]byte{2}, Status: StOK, D: gr.GExp(big.NewInt(9)), E: big.NewInt(4), Z: big.NewInt(5)},
			{Digest: [32]byte{3}, Status: StOK, Share: big.NewInt(678)},
			{Digest: [32]byte{4}, Status: StRefused},
		},
	}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	body, err := decodePartialResp(gr, data)
	if err != nil {
		t.Fatal(err)
	}
	out := body.(*PartialResp)
	if out.Key != in.Key || len(out.Items) != 4 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	if out.Items[0].Sigma.Cmp(in.Items[0].Sigma) != 0 {
		t.Fatal("sigma mismatch")
	}
	if !out.Items[1].D.Equal(in.Items[1].D) || out.Items[1].E.Cmp(in.Items[1].E) != 0 || out.Items[1].Z.Cmp(in.Items[1].Z) != 0 {
		t.Fatal("decrypt fields mismatch")
	}
	if out.Items[2].Share.Cmp(in.Items[2].Share) != 0 {
		t.Fatal("share mismatch")
	}
	if out.Items[3].Status != StRefused || out.Items[3].Sigma != nil || out.Items[3].D != nil {
		t.Fatalf("status-only item decoded wrong: %+v", out.Items[3])
	}
}

func TestPrepareRoundtrip(t *testing.T) {
	in := &Prepare{Key: 9, Sids: []msg.SessionID{NonceSID(9, 2, 0), BeaconSID(9, 1)}}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	body, err := decodePrepare(data)
	if err != nil {
		t.Fatal(err)
	}
	out := body.(*Prepare)
	if out.Key != 9 || len(out.Sids) != 2 || out.Sids[0] != in.Sids[0] || out.Sids[1] != in.Sids[1] {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	gr := group.Test256()

	// Truncated buffers.
	if _, err := decodePartialReq([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated PartialReq accepted")
	}
	if _, err := decodePartialResp(gr, []byte{1}); err == nil {
		t.Fatal("truncated PartialResp accepted")
	}
	if _, err := decodePrepare([]byte{}); err == nil {
		t.Fatal("empty Prepare accepted")
	}

	// Oversized item counts are rejected before allocation.
	w := msg.NewWriter(16)
	w.U64(1)
	w.U32(maxItemsPerReq + 1)
	if _, err := decodePartialReq(w.Bytes()); err == nil {
		t.Fatal("oversized item count accepted")
	}

	// Wrong digest length.
	w = msg.NewWriter(64)
	w.U64(1)
	w.U32(1)
	w.Blob(make([]byte, 31))
	w.U8(OpSign)
	w.U64(0)
	w.Blob(nil)
	if _, err := decodePartialReq(w.Bytes()); err == nil {
		t.Fatal("31-byte digest accepted")
	}

	// Trailing garbage.
	good := &Prepare{Key: 1, Sids: []msg.SessionID{BeaconSID(1, 1)}}
	data, _ := good.MarshalBinary()
	if _, err := decodePrepare(append(data, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestRegisterCodec(t *testing.T) {
	gr := group.Test256()
	c := msg.NewCodec()
	if err := RegisterCodec(c, gr); err != nil {
		t.Fatal(err)
	}
	in := &PartialReq{Key: 3, Items: []ReqItem{{Digest: [32]byte{8}, Op: OpSign, Sid: NonceSID(3, 1, 0), Payload: []byte("m")}}}
	data, _ := in.MarshalBinary()
	body, err := c.Decode(msg.TDataReq, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := body.(*PartialReq); got.Key != 3 || len(got.Items) != 1 {
		t.Fatalf("codec decode mismatch: %+v", got)
	}
}

package dataplane

import (
	"errors"
	"math/big"
	"testing"
	"time"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/thresh"
)

// sent records one outgoing peer message.
type sent struct {
	to   msg.NodeID
	body msg.Body
}

// testRig is a single standalone service with recorded side effects:
// the test plays the rest of the cluster by hand.
type testRig struct {
	gr        *group.Group
	svc       *Service
	keyP      *poly.Poly
	keyV      *commit.Vector
	sends     []sent
	submitted []msg.SessionID
}

func newTestRig(t *testing.T, n, th int, tweak func(*Config)) *testRig {
	t.Helper()
	gr := group.Test256()
	rng := randutil.NewReader(0xD1CE)
	rig := &testRig{gr: gr}
	peers := make([]msg.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		peers = append(peers, msg.NodeID(i))
	}
	cfg := Config{
		Group: gr,
		Self:  1,
		N:     n,
		T:     th,
		Peers: peers,
		Send:  func(to msg.NodeID, body msg.Body) { rig.sends = append(rig.sends, sent{to, body}) },
		Submit: func(sid msg.SessionID) {
			rig.submitted = append(rig.submitted, sid)
		},
		Rand: rng,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rig.svc = NewService(cfg)
	var err error
	rig.keyP, err = poly.NewRandom(gr.Q(), th, rng)
	if err != nil {
		t.Fatal(err)
	}
	rig.keyV = commit.NewVector(gr, rig.keyP)
	if _, err := rig.svc.InstallKey(1, rig.keyP.EvalInt(1), rig.keyV); err != nil {
		t.Fatal(err)
	}
	return rig
}

// dealAux fabricates one aux session sharing and installs node 1's
// share on the rig's service.
func (r *testRig) dealAux(t *testing.T, sid msg.SessionID) (*poly.Poly, *commit.Vector) {
	t.Helper()
	rng := randutil.NewReader(uint64(sid))
	p, err := poly.NewRandom(r.gr.Q(), r.svc.cfg.T, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := commit.NewVector(r.gr, p)
	r.svc.InstallAux(sid, p.EvalInt(1), v)
	return p, v
}

// lastRespTo returns the most recent PartialResp sent to the node.
func (r *testRig) lastRespTo(to msg.NodeID) *PartialResp {
	for i := len(r.sends) - 1; i >= 0; i-- {
		if r.sends[i].to == to {
			if resp, ok := r.sends[i].body.(*PartialResp); ok {
				return resp
			}
		}
	}
	return nil
}

func TestInstallKeyValidation(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	// Session IDs must fit the 24-bit aux derivation range.
	if _, err := rig.svc.InstallKey(1<<24, rig.keyP.EvalInt(1), rig.keyV); err == nil {
		t.Fatal("25-bit key session accepted")
	}
	// A share that fails the commitment check is rejected.
	bad := new(big.Int).Add(rig.keyP.EvalInt(1), big.NewInt(1))
	if _, err := rig.svc.InstallKey(2, bad, rig.keyV); err == nil {
		t.Fatal("bad share accepted")
	}
	if _, err := rig.svc.InstallKey(2, nil, rig.keyV); err == nil {
		t.Fatal("nil share accepted")
	}
}

// TestSignProvisionAndServe walks the full aggregator path by hand:
// activation provisions the reservoir via Submit+Prepare, InstallAux
// unblocks the queued request, self + one peer partial reach t+1=2,
// and the combined signature verifies.
func TestSignProvisionAndServe(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	message := []byte("threshold me")

	var got Result
	var gotErr error
	called := false
	if err := rig.svc.Sign(1, message, func(r Result, err error) {
		got, gotErr, called = r, err, true
	}); err != nil {
		t.Fatal(err)
	}

	// Activation must have submitted nonce sessions locally and
	// broadcast a Prepare to both peers.
	if len(rig.submitted) == 0 {
		t.Fatal("no aux sessions submitted on activation")
	}
	prepTo := map[msg.NodeID]bool{}
	for _, s := range rig.sends {
		if _, ok := s.body.(*Prepare); ok {
			prepTo[s.to] = true
		}
	}
	if !prepTo[2] || !prepTo[3] {
		t.Fatalf("Prepare not broadcast to peers: %v", prepTo)
	}
	if called {
		t.Fatal("request completed with no nonce installed")
	}

	// Complete the first owned nonce session; the queued request
	// dispatches: self partial plus a PartialReq to t+1 peers.
	sid := NonceSID(1, 1, 0)
	auxP, auxV := rig.dealAux(t, sid)
	var preq *PartialReq
	for _, s := range rig.sends {
		if pr, ok := s.body.(*PartialReq); ok {
			preq = pr
		}
	}
	if preq == nil {
		t.Fatal("no PartialReq fanned out after InstallAux")
	}
	if len(preq.Items) != 1 || preq.Items[0].Sid != sid || preq.Items[0].Op != OpSign {
		t.Fatalf("unexpected PartialReq: %+v", preq.Items)
	}

	// Play peer 2: compute its partial from the dealt shares.
	c := thresh.Challenge(rig.gr, auxV.PublicKey(), rig.keyV.PublicKey(), message)
	p2 := thresh.PartialSignPre(rig.gr, 2, rig.keyP.EvalInt(2), auxP.EvalInt(2), c)
	rig.svc.HandleMessage(2, &PartialResp{Key: 1, Items: []RespItem{
		{Digest: preq.Items[0].Digest, Status: StOK, Sigma: p2.Sigma},
	}})

	if !called {
		t.Fatal("request did not complete at t+1 partials")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !thresh.Verify(rig.gr, rig.keyV.PublicKey(), message, got.Sig) {
		t.Fatal("combined signature does not verify")
	}

	// The nonce share must be consumed on the serving side too.
	st := rig.svc.Stats()
	if st.Batches != 1 || st.Items != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestNonceConsumeOnce pins the core safety invariant: once a nonce
// session served one digest, the same digest replays from the partial
// cache and any other digest is refused.
func TestNonceConsumeOnce(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	message := []byte("first")
	if err := rig.svc.Sign(1, message, func(Result, error) {}); err != nil {
		t.Fatal(err)
	}
	sid := NonceSID(1, 1, 0)
	rig.dealAux(t, sid)
	digest := SignDigest(1, message)

	// Peer 3 asks for the digest the service already self-signed: the
	// cached partial is replayed bit-for-bit.
	rig.svc.HandleMessage(3, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: digest, Op: OpSign, Sid: sid, Payload: message},
	}})
	resp := rig.lastRespTo(3)
	if resp == nil || resp.Items[0].Status != StOK || resp.Items[0].Sigma == nil {
		t.Fatalf("cached partial not replayed: %+v", resp)
	}
	if rig.svc.Stats().PeerCacheHits == 0 {
		t.Fatal("replay did not count as a cache hit")
	}

	// A different digest under the consumed nonce is refused — this is
	// the nonce-reuse attack surface.
	other := []byte("second")
	rig.svc.HandleMessage(3, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: SignDigest(1, other), Op: OpSign, Sid: sid, Payload: other},
	}})
	resp = rig.lastRespTo(3)
	if resp.Items[0].Status != StRefused {
		t.Fatalf("consumed nonce re-served: status %d", resp.Items[0].Status)
	}
	if resp.Items[0].Sigma != nil {
		t.Fatal("refused item carried a partial")
	}
}

func TestPartialReqErrorStatuses(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)

	// Unknown key.
	rig.svc.HandleMessage(2, &PartialReq{Key: 999, Items: []ReqItem{
		{Digest: [32]byte{1}, Op: OpSign, Sid: NonceSID(999, 2, 0)},
	}})
	if resp := rig.lastRespTo(2); resp == nil || resp.Items[0].Status != StUnknownKey {
		t.Fatalf("unknown key not reported: %+v", resp)
	}

	// Nonce session not completed here yet.
	rig.svc.HandleMessage(2, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: [32]byte{2}, Op: OpSign, Sid: NonceSID(1, 2, 7)},
	}})
	if resp := rig.lastRespTo(2); resp.Items[0].Status != StNotReady {
		t.Fatalf("missing aux session not NotReady: %+v", resp.Items[0])
	}

	// Bogus op code.
	rig.svc.HandleMessage(2, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: [32]byte{3}, Op: 99},
	}})
	if resp := rig.lastRespTo(2); resp.Items[0].Status != StBadOp {
		t.Fatalf("bad op not rejected: %+v", resp.Items[0])
	}

	// Garbage decrypt payload.
	rig.svc.HandleMessage(2, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: [32]byte{4}, Op: OpDecrypt, Payload: []byte{1, 2, 3}},
	}})
	if resp := rig.lastRespTo(2); resp.Items[0].Status != StBadOp {
		t.Fatalf("garbage ciphertext not rejected: %+v", resp.Items[0])
	}
}

func TestPrepareSubmitsIdempotently(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	sids := []msg.SessionID{NonceSID(1, 2, 0), BeaconSID(1, 1)}
	rig.svc.HandleMessage(2, &Prepare{Key: 1, Sids: sids})
	if len(rig.submitted) != 2 {
		t.Fatalf("submitted %d sessions, want 2", len(rig.submitted))
	}
	// A duplicate Prepare (another aggregator, a retry) is a no-op.
	rig.svc.HandleMessage(3, &Prepare{Key: 1, Sids: sids})
	if len(rig.submitted) != 2 {
		t.Fatalf("duplicate Prepare re-submitted: %v", rig.submitted)
	}
	// Non-aux session IDs are never submitted.
	rig.svc.HandleMessage(2, &Prepare{Key: 1, Sids: []msg.SessionID{5}})
	if len(rig.submitted) != 2 {
		t.Fatal("non-aux sid submitted")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	rig := newTestRig(t, 3, 1, func(cfg *Config) {
		cfg.Rate = 1
		cfg.Burst = 1
		cfg.Now = func() time.Time { return now }
		cfg.Provision = func(msg.SessionID, []msg.SessionID) {} // keep requests queued
	})
	cb := func(Result, error) {}
	if err := rig.svc.Sign(1, []byte("m1"), cb); err != nil {
		t.Fatal(err)
	}
	err := rig.svc.Sign(1, []byte("m2"), cb)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("burst exceeded but not shed: %v", err)
	}
	if rig.svc.Stats().Shed != 1 {
		t.Fatalf("stats: %+v", rig.svc.Stats())
	}
	// One second refills one token.
	now = now.Add(time.Second)
	if err := rig.svc.Sign(1, []byte("m2"), cb); err != nil {
		t.Fatalf("refilled token not granted: %v", err)
	}
}

func TestAdmissionPendingBound(t *testing.T) {
	rig := newTestRig(t, 3, 1, func(cfg *Config) {
		cfg.MaxPending = 2
		cfg.MaxBatch = 64
		cfg.Provision = func(msg.SessionID, []msg.SessionID) {} // keep requests queued
	})
	cb := func(Result, error) {}
	if err := rig.svc.Sign(1, []byte("a"), cb); err != nil {
		t.Fatal(err)
	}
	if err := rig.svc.Sign(1, []byte("b"), cb); err != nil {
		t.Fatal(err)
	}
	if err := rig.svc.Sign(1, []byte("c"), cb); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue overflow not shed: %v", err)
	}
	// A duplicate of a queued request coalesces instead of being shed.
	if err := rig.svc.Sign(1, []byte("a"), cb); err != nil {
		t.Fatalf("duplicate digest shed: %v", err)
	}
	if rig.svc.Stats().Coalesced != 1 {
		t.Fatalf("stats: %+v", rig.svc.Stats())
	}
}

func TestRetireLifecycle(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	info, ok := rig.svc.KeyInfo(1)
	if !ok || info.State != StateReady {
		t.Fatalf("fresh key state: %+v", info)
	}
	rig.svc.Activate(1)
	if info, _ = rig.svc.KeyInfo(1); info.State != StateServing {
		t.Fatalf("activated key state: %v", info.State)
	}
	rig.svc.Retire(1)
	if info, _ = rig.svc.KeyInfo(1); info.State != StateRetiring {
		t.Fatalf("retired key state: %v", info.State)
	}
	if err := rig.svc.Sign(1, []byte("x"), func(Result, error) {}); !errors.Is(err, ErrRetiring) {
		t.Fatalf("retiring key accepted a request: %v", err)
	}
	// Peer partials are still served so other aggregators can finish.
	sid := NonceSID(1, 2, 0)
	p, v := rig.dealAux(t, sid)
	_ = p
	_ = v
	rig.svc.HandleMessage(2, &PartialReq{Key: 1, Items: []ReqItem{
		{Digest: [32]byte{9}, Op: OpSign, Sid: sid, Payload: []byte("peer msg")},
	}})
	if resp := rig.lastRespTo(2); resp == nil || resp.Items[0].Status != StOK {
		t.Fatalf("retiring key stopped serving partials: %+v", resp)
	}
}

func TestCloseFailsPending(t *testing.T) {
	rig := newTestRig(t, 3, 1, func(cfg *Config) {
		cfg.Provision = func(msg.SessionID, []msg.SessionID) {}
	})
	var gotErr error
	called := false
	if err := rig.svc.Sign(1, []byte("m"), func(_ Result, err error) {
		gotErr, called = err, true
	}); err != nil {
		t.Fatal(err)
	}
	rig.svc.Close()
	if !called || !errors.Is(gotErr, ErrClosed) {
		t.Fatalf("pending request not failed on close: called=%v err=%v", called, gotErr)
	}
	if err := rig.svc.Sign(1, []byte("n"), func(Result, error) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service accepted a request: %v", err)
	}
}

func TestSignRejectsUnknownKey(t *testing.T) {
	rig := newTestRig(t, 3, 1, nil)
	if err := rig.svc.Sign(42, []byte("m"), func(Result, error) {}); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key accepted: %v", err)
	}
	if err := rig.svc.Beacon(1, 0, func(Result, error) {}); err == nil {
		t.Fatal("beacon round 0 accepted")
	}
}

// Package dataplane turns completed DKG sessions into long-lived
// serving keys. The control plane (internal/engine) produces shares
// and commitments; this package is the request-serving layer in front
// of them: a per-node Service answers Sign, Decrypt and BeaconRound
// requests against installed keys by fanning partial-operation
// requests out to peer share holders, aggregating the partials with
// the internal/thresh primitives, and returning ordinary Schnorr
// signatures, ElGamal plaintexts and beacon outputs.
//
// Keys have a lifecycle: InstallKey yields a Ready key; the first
// request (or an explicit Activate) moves it to Serving, which
// provisions the auxiliary sessions serving needs — a reservoir of
// pre-generated nonce DKGs (threshold Schnorr consumes one shared
// nonce per signature; generating it per request would put a full DKG
// on the hot path) and a look-ahead window of beacon DKGs. Retire
// moves the key to Retiring: new requests are shed, in-flight ones
// drain, peer partials are still served so other aggregators can
// finish.
//
// Safety invariant: a nonce share signs exactly one request digest.
// Signing two messages with one nonce leaks the key (σ = k + c·s for
// two challenges solves for s), so every node — peer or aggregator —
// consumes its share of a nonce session on first use and afterwards
// only replays the cached partial for the same digest; a request for
// a different digest under a consumed nonce is refused.
//
// The package is transport-agnostic: peers exchange msg.Body values
// through a caller-supplied send function, so the same Service runs
// over the deterministic simulator (the hybriddkg facade) and over
// TCP sessions (cmd/dkgnode serve). client.go adds the external
// client protocol: length-prefixed frames with a versioned
// ClientHello, served from any node's Service.
package dataplane

import (
	"errors"

	"hybriddkg/internal/msg"
)

// Errors returned by the data plane.
var (
	// ErrUnknownKey: the request names a key this service never
	// installed (or already removed).
	ErrUnknownKey = errors.New("dataplane: unknown key")
	// ErrOverloaded: admission control shed the request (token bucket
	// empty or the per-key pending queue full). Clients should back
	// off and retry.
	ErrOverloaded = errors.New("dataplane: overloaded, request shed")
	// ErrRetiring: the key no longer accepts new requests.
	ErrRetiring = errors.New("dataplane: key is retiring")
	// ErrUnavailable: not enough live, honest share holders answered
	// to reach the t+1 reconstruction threshold.
	ErrUnavailable = errors.New("dataplane: not enough partials")
	// ErrClosed: the service was shut down.
	ErrClosed = errors.New("dataplane: service closed")
)

// PeerSession is the session ID on which data-plane peer traffic
// (partial requests/responses, prepare messages) flows. Bit 63 keeps
// it disjoint from every control-plane DKG session.
const PeerSession msg.SessionID = 1 << 63

// Aux session ID layout. Auxiliary DKG sessions (nonce reservoirs,
// beacon rounds) are derived deterministically so that every node
// submits the same session ID for the same purpose without extra
// coordination:
//
//	nonce:  bit62 | key[23:0]<<32 | owner[7:0]<<24 | counter[23:0]
//	beacon: bit62 | bit61 | key[23:0]<<32 | round[23:0]
//
// The packing bounds primary key session IDs to 24 bits, aggregator
// node IDs to 8 bits and nonce counters / beacon rounds to 24 bits —
// far beyond any deployment this repository targets, and checked at
// derivation time.
const (
	auxFlag    uint64 = 1 << 62
	beaconFlag uint64 = 1 << 61
)

// NonceSID derives the session ID of the counter-th nonce DKG owned
// by aggregator owner for the given key. Partitioning the reservoir
// by owner lets every node aggregate without nonce-assignment races:
// an aggregator only assigns nonces from sessions it derived itself.
func NonceSID(key msg.SessionID, owner msg.NodeID, counter uint64) msg.SessionID {
	return msg.SessionID(auxFlag |
		(uint64(key)&0xFFFFFF)<<32 |
		(uint64(owner)&0xFF)<<24 |
		counter&0xFFFFFF)
}

// BeaconSID derives the session ID of the beacon DKG for one round of
// a key's beacon sequence. It is owner-independent: all aggregators
// open the same round session and obtain the same output.
func BeaconSID(key msg.SessionID, round uint64) msg.SessionID {
	return msg.SessionID(auxFlag | beaconFlag |
		(uint64(key)&0xFFFFFF)<<32 |
		round&0xFFFFFF)
}

// IsAux reports whether sid is a data-plane auxiliary session. The
// control plane uses it to route completed aux sessions to the
// service instead of announcing them as primary keys.
func IsAux(sid msg.SessionID) bool { return uint64(sid)&auxFlag != 0 && uint64(sid)&(1<<63) == 0 }

// IsBeacon reports whether sid is a beacon-round session.
func IsBeacon(sid msg.SessionID) bool { return IsAux(sid) && uint64(sid)&beaconFlag != 0 }

// AuxKey recovers the primary key's low 24 session-ID bits from an
// aux session ID.
func AuxKey(sid msg.SessionID) uint64 { return (uint64(sid) >> 32) & 0xFFFFFF }

// NonceOwner recovers the owning aggregator from a nonce session ID.
func NonceOwner(sid msg.SessionID) msg.NodeID { return msg.NodeID((uint64(sid) >> 24) & 0xFF) }

// NonceCounter recovers the owner-local counter from a nonce session
// ID. Counters increase monotonically per (key, owner), which is what
// lets consumed-nonce tombstones collapse into a per-owner floor when
// they age out of the bounded tombstone ring.
func NonceCounter(sid msg.SessionID) uint64 { return uint64(sid) & 0xFFFFFF }

// BeaconRound recovers the round from a beacon session ID.
func BeaconRound(sid msg.SessionID) uint64 { return uint64(sid) & 0xFFFFFF }

// Op codes carried by partial-operation requests.
const (
	OpSign    uint8 = 1 // payload: message bytes; Sid: nonce session
	OpDecrypt uint8 = 2 // payload: compressed C1 ‖ C2
	OpOpen    uint8 = 3 // Sid: beacon session to open
)

// Per-item response statuses.
const (
	StOK         uint8 = 0
	StNotReady   uint8 = 1 // aux session not completed here yet; retry
	StUnknownKey uint8 = 2
	StRefused    uint8 = 3 // nonce already consumed for another digest
	StBadOp      uint8 = 4
)

package dataplane

import (
	"bufio"
	"context"
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/thresh"
)

// soloRig is a one-node cluster (n=1, t=0) behind a real TCP client
// server: every request completes synchronously from the node's own
// share, so the protocol paths can be tested without a simulator pump.
type soloRig struct {
	svc  *Service
	srv  *Server
	keyV *commit.Vector
	gr   *group.Group
}

func newSoloRig(t *testing.T, tweak func(*Config)) *soloRig {
	t.Helper()
	gr := group.Test256()
	rng := randutil.NewReader(0x50F0)
	rig := &soloRig{gr: gr}
	cfg := Config{
		Group: gr,
		Self:  1,
		N:     1,
		T:     0,
		Peers: []msg.NodeID{1},
		Send:  func(msg.NodeID, msg.Body) {},
		Rand:  rng,
	}
	cfg.Provision = func(_ msg.SessionID, sids []msg.SessionID) {
		// Runs on connection goroutines; panic rather than t.Fatal.
		for _, sid := range sids {
			p, err := poly.NewRandom(gr.Q(), 0, randutil.NewReader(uint64(sid)))
			if err != nil {
				panic(err)
			}
			rig.svc.InstallAux(sid, p.EvalInt(1), commit.NewVector(gr, p))
		}
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rig.svc = NewService(cfg)
	keyP, err := poly.NewRandom(gr.Q(), 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	rig.keyV = commit.NewVector(gr, keyP)
	if _, err := rig.svc.InstallKey(1, keyP.EvalInt(1), rig.keyV); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rig.srv = NewServer(ln, rig.svc, "test256")
	t.Cleanup(rig.srv.Close)
	return rig
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClientEndToEnd(t *testing.T) {
	rig := newSoloRig(t, nil)
	cli, err := Dial(rig.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := testCtx(t)

	if cli.GroupName() != "test256" {
		t.Fatalf("group name %q", cli.GroupName())
	}
	if n, th := cli.Roster(); n != 1 || th != 0 {
		t.Fatalf("roster (%d, %d)", n, th)
	}

	info, err := cli.KeyInfo(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.PublicKey.Equal(rig.keyV.PublicKey()) {
		t.Fatal("key info public key mismatch")
	}

	message := []byte("over the wire")
	sig, err := cli.Sign(ctx, 1, message)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(rig.gr, rig.keyV.PublicKey(), message, sig) {
		t.Fatal("signature from client does not verify")
	}

	plainIn := rig.gr.GExp(big.NewInt(424242))
	ct, err := thresh.Encrypt(rig.gr, rig.keyV.PublicKey(), plainIn, randutil.NewReader(5))
	if err != nil {
		t.Fatal(err)
	}
	plainOut, err := cli.Decrypt(ctx, 1, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !plainOut.Equal(plainIn) {
		t.Fatal("decryption mismatch")
	}

	bout, err := cli.Beacon(ctx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bout.Output != thresh.BeaconOutput(rig.gr, 1, bout.Opened) {
		t.Fatal("beacon output does not match its opening")
	}
	if !rig.gr.GExp(bout.Opened).Equal(bout.EphemeralPK) {
		t.Fatal("beacon opening does not match the round public key")
	}
}

// TestClientDuplicateDigestHitsCache: re-submitting the same operation
// returns the cached result without a second partial round.
func TestClientDuplicateDigestHitsCache(t *testing.T) {
	rig := newSoloRig(t, nil)
	cli, err := Dial(rig.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := testCtx(t)

	message := []byte("same thing twice")
	sig1, err := cli.Sign(ctx, 1, message)
	if err != nil {
		t.Fatal(err)
	}
	before := rig.svc.Stats()
	sig2, err := cli.Sign(ctx, 1, message)
	if err != nil {
		t.Fatal(err)
	}
	after := rig.svc.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("second identical request missed the cache: %+v -> %+v", before, after)
	}
	if !sig1.R.Equal(sig2.R) || sig1.Sigma.Cmp(sig2.Sigma) != 0 {
		t.Fatal("cached signature differs")
	}
	// Beacon rounds are idempotent the same way.
	b1, err := cli.Beacon(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cli.Beacon(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Output != b2.Output {
		t.Fatal("beacon round not idempotent")
	}
}

func TestClientUnknownKey(t *testing.T) {
	rig := newSoloRig(t, nil)
	cli, err := Dial(rig.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := testCtx(t)

	_, err = cli.Sign(ctx, 12345, []byte("m"))
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Code != CodeUnknownKey {
		t.Fatalf("unknown key error: %v", err)
	}
	_, err = cli.KeyInfo(ctx, 12345)
	if !errors.As(err, &ce) || ce.Code != CodeUnknownKey {
		t.Fatalf("unknown key info error: %v", err)
	}
}

func TestClientOverloadShed(t *testing.T) {
	rig := newSoloRig(t, func(cfg *Config) {
		cfg.Rate = 0.001 // one token, essentially never refilled
		cfg.Burst = 1
	})
	cli, err := Dial(rig.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := testCtx(t)

	if _, err := cli.Sign(ctx, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	_, err = cli.Sign(ctx, 1, []byte("second"))
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Code != CodeOverloaded {
		t.Fatalf("shed request error: %v", err)
	}
	// The connection survives a shed; a duplicate of the first request
	// still answers from the cache.
	if _, err := cli.Sign(ctx, 1, []byte("first")); err != nil {
		t.Fatalf("connection unusable after shed: %v", err)
	}
}

func TestClientRetiringKey(t *testing.T) {
	rig := newSoloRig(t, nil)
	rig.svc.Retire(1)
	cli, err := Dial(rig.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Sign(testCtx(t), 1, []byte("m"))
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Code != CodeRetiring {
		t.Fatalf("retiring key error: %v", err)
	}
}

// rawConn dials without the Client wrapper so tests can send
// hand-crafted (and deliberately broken) frames.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

func expectError(t *testing.T, br *bufio.Reader, code uint8) *ClientError {
	t.Helper()
	ftype, payload, err := readFrame(br)
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if ftype != FError {
		t.Fatalf("frame type 0x%02x, want FError", ftype)
	}
	var ce *ClientError
	if err := decodeError(payload); !errors.As(err, &ce) || ce.Code != code {
		t.Fatalf("error %v, want code %d", err, code)
	}
	return ce
}

func expectClosed(t *testing.T, br *bufio.Reader) {
	t.Helper()
	if _, _, err := readFrame(br); err == nil {
		t.Fatal("connection still open, want close")
	}
}

func TestClientHelloVersionMismatch(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	hello := append([]byte(ClientMagic), 0, 99) // version 99
	if err := writeFrame(conn, FClientHello, hello); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeBadVersion)
	expectClosed(t, br)
}

func TestClientHelloBadMagic(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	hello := append([]byte("NOPE"), byte(ClientVersion>>8), byte(ClientVersion))
	if err := writeFrame(conn, FClientHello, hello); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeMalformed)
	expectClosed(t, br)
}

func TestClientHelloWrongFirstFrame(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	// A request before the hello is a protocol violation.
	if err := writeFrame(conn, FSignReq, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeMalformed)
	expectClosed(t, br)
}

// doHello performs a valid handshake on a raw connection.
func doHello(t *testing.T, conn net.Conn, br *bufio.Reader) {
	t.Helper()
	hello := append([]byte(ClientMagic), byte(ClientVersion>>8), byte(ClientVersion))
	if err := writeFrame(conn, FClientHello, hello); err != nil {
		t.Fatal(err)
	}
	ftype, _, err := readFrame(br)
	if err != nil || ftype != FServerHello {
		t.Fatalf("handshake: type=0x%02x err=%v", ftype, err)
	}
}

func TestClientMalformedRequestPayload(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	doHello(t, conn, br)
	// A truncated sign request (reqID only, no key or message).
	if err := writeFrame(conn, FSignReq, []byte{0, 0, 0, 0, 0, 0, 0, 7}); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeMalformed)
	expectClosed(t, br)
}

func TestClientUnknownFrameType(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	doHello(t, conn, br)
	if err := writeFrame(conn, 0x6E, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeMalformed)
	expectClosed(t, br)
}

func TestClientBadCiphertext(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	doHello(t, conn, br)
	// Well-formed frame whose ciphertext bytes are not group elements:
	// the server reports bad-request but keeps the connection open.
	w := msg.NewWriter(64)
	w.U64(1)
	w.U64(1)
	w.Blob([]byte{1, 2, 3})
	w.Blob([]byte{4, 5, 6})
	if err := writeFrame(conn, FDecryptReq, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	expectError(t, br, CodeBadRequest)
	// Still serviceable.
	w = msg.NewWriter(16)
	w.U64(2)
	w.U64(1)
	if err := writeFrame(conn, FKeyInfoReq, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	ftype, _, err := readFrame(br)
	if err != nil || ftype != FKeyInfoResp {
		t.Fatalf("connection dead after bad request: type=0x%02x err=%v", ftype, err)
	}
}

func TestClientOversizedFrameRejected(t *testing.T) {
	rig := newSoloRig(t, nil)
	conn, br := rawConn(t, rig.srv.Addr())
	// A frame header claiming 2 MB closes the connection outright.
	var hdr [4]byte
	hdr[0] = 0x00
	hdr[1] = 0x20 // 0x00200000 = 2 MiB
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, br)
}

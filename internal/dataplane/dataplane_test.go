package dataplane_test

import (
	"errors"
	"math/big"
	"testing"

	"hybriddkg/internal/dataplane"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/thresh"
)

func newCluster(t *testing.T, n, th int, tweak func(*dataplane.Config)) *harness.DataPlaneCluster {
	t.Helper()
	c, err := harness.NewDataPlaneCluster(harness.DataPlaneOptions{N: n, T: th, Seed: 42, Tweak: tweak})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDataPlaneSign(t *testing.T) {
	c := newCluster(t, 7, 2, nil)
	message := []byte("distributed key, ordinary signature")
	sig, err := c.Sign(1, message)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(c.Group, c.KeyV.PublicKey(), message, sig) {
		t.Fatal("signature does not verify")
	}

	// Another aggregator signs the same message with its own nonce:
	// different signature, same key.
	sig2, err := c.Sign(4, message)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(c.Group, c.KeyV.PublicKey(), message, sig2) {
		t.Fatal("second aggregator's signature does not verify")
	}
	if sig.R.Equal(sig2.R) {
		t.Fatal("two aggregators shared a nonce")
	}
}

func TestDataPlaneSignDuplicateCoalesces(t *testing.T) {
	c := newCluster(t, 5, 1, nil)
	svc := c.Services[1]
	message := []byte("asked twice, signed once")

	var sigs [2]thresh.Signature
	var errs [2]error
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		if err := svc.Sign(c.KeyID, message, func(r dataplane.Result, err error) {
			sigs[i], errs[i] = r.Sig, err
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush(c.KeyID)
	c.Pump(func() bool { return done == 2 })
	if done != 2 {
		t.Fatalf("%d of 2 callbacks fired", done)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if !sigs[0].R.Equal(sigs[1].R) || sigs[0].Sigma.Cmp(sigs[1].Sigma) != 0 {
		t.Fatal("coalesced requests produced different signatures")
	}
	st := svc.Stats()
	if st.Coalesced != 1 || st.Requests != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Re-requesting after completion is a result-cache hit.
	sig3, err := c.Sign(1, message)
	if err != nil {
		t.Fatal(err)
	}
	if !sig3.R.Equal(sigs[0].R) {
		t.Fatal("cached signature differs")
	}
	if c.Services[1].Stats().CacheHits == 0 {
		t.Fatal("no cache hit recorded")
	}
}

func TestDataPlaneSignBatch(t *testing.T) {
	c := newCluster(t, 7, 2, func(cfg *dataplane.Config) {
		cfg.NonceTarget = 16 // pre-stock the reservoir for one big batch
		cfg.MaxBatch = 64    // no watermark flush mid-test
	})
	c.Services[1].Activate(c.KeyID)

	msgs := make([][]byte, 10)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'b', 'a', 't', 'c', 'h'}
	}
	sigs, err := c.SignBatch(1, msgs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i, sig := range sigs {
		if !thresh.Verify(c.Group, c.KeyV.PublicKey(), msgs[i], sig) {
			t.Fatalf("signature %d does not verify", i)
		}
		rb := c.Group.EncodeCompressed(sig.R)
		if seen[string(rb)] {
			t.Fatalf("signature %d reused a nonce", i)
		}
		seen[string(rb)] = true
	}
	st := c.Services[1].Stats()
	if st.Batches != 1 {
		t.Fatalf("10 requests took %d batches, want 1 coalesced fan-out (stats %+v)", st.Batches, st)
	}
	if st.Items != 10 {
		t.Fatalf("batch carried %d items, want 10", st.Items)
	}
}

func TestDataPlaneDecrypt(t *testing.T) {
	c := newCluster(t, 5, 1, nil)
	plainIn := c.Group.GExp(big.NewInt(7777))
	ct, err := thresh.Encrypt(c.Group, c.KeyV.PublicKey(), plainIn, randutil.NewReader(9))
	if err != nil {
		t.Fatal(err)
	}
	plainOut, err := c.Decrypt(3, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !plainOut.Equal(plainIn) {
		t.Fatal("threshold decryption mismatch")
	}
}

func TestDataPlaneBeacon(t *testing.T) {
	c := newCluster(t, 5, 1, nil)
	var prev [32]byte
	for round := uint64(1); round <= 3; round++ {
		out, err := c.Beacon(1, round)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if out.Round != round {
			t.Fatalf("round %d answered as %d", round, out.Round)
		}
		if out.Output == prev {
			t.Fatalf("round %d output repeated", round)
		}
		prev = out.Output
		// The output is publicly verifiable from the opening.
		if out.Output != thresh.BeaconOutput(c.Group, round, out.Opened) {
			t.Fatalf("round %d output does not match opening", round)
		}
		if !c.Group.GExp(out.Opened).Equal(out.EphemeralPK) {
			t.Fatalf("round %d opening does not match round key", round)
		}
	}

	// The beacon is a shared sequence: a different aggregator opening
	// the same round gets the identical output.
	out2, err := c.Beacon(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := c.Beacon(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Output != out2.Output {
		t.Fatal("aggregators disagree on a beacon round")
	}
}

// TestDataPlaneEvictsBadSigner wires nodes 2, 3 and 4 — aggregator
// 1's entire initial fan-out — to corrupt every partial signature
// they return. The aggregator must identify the forgers from the
// failed combine, evict them and finish against the honest remainder.
func TestDataPlaneEvictsBadSigner(t *testing.T) {
	c := newCluster(t, 7, 2, func(cfg *dataplane.Config) {
		if cfg.Self != 2 && cfg.Self != 3 && cfg.Self != 4 {
			return
		}
		orig := cfg.Send
		cfg.Send = func(to msg.NodeID, body msg.Body) {
			if resp, ok := body.(*dataplane.PartialResp); ok {
				forged := &dataplane.PartialResp{Key: resp.Key, Items: make([]dataplane.RespItem, len(resp.Items))}
				copy(forged.Items, resp.Items)
				for i := range forged.Items {
					if forged.Items[i].Sigma != nil {
						forged.Items[i].Sigma = new(big.Int).Add(forged.Items[i].Sigma, big.NewInt(1))
					}
				}
				body = forged
			}
			orig(to, body)
		}
	})

	message := []byte("three of the seven are lying")
	sig, err := c.Sign(1, message)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(c.Group, c.KeyV.PublicKey(), message, sig) {
		t.Fatal("signature does not verify despite honest majority")
	}
	st := c.Services[1].Stats()
	if st.Evicted == 0 {
		t.Fatalf("forged partial was never evicted: %+v", st)
	}

	// Later requests keep working (the suspect is routed around).
	sig2, err := c.Sign(1, []byte("business as usual"))
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(c.Group, c.KeyV.PublicKey(), []byte("business as usual"), sig2) {
		t.Fatal("post-eviction signature does not verify")
	}
}

func TestDataPlaneAdmissionShed(t *testing.T) {
	c := newCluster(t, 5, 1, func(cfg *dataplane.Config) {
		cfg.MaxPending = 1
		cfg.MaxBatch = 64
		cfg.Provision = func(msg.SessionID, []msg.SessionID) {} // starve: requests stay queued
	})
	svc := c.Services[1]
	if err := svc.Sign(c.KeyID, []byte("first"), func(dataplane.Result, error) {}); err != nil {
		t.Fatal(err)
	}
	err := svc.Sign(c.KeyID, []byte("second"), func(dataplane.Result, error) {})
	if !errors.Is(err, dataplane.ErrOverloaded) {
		t.Fatalf("overflow not shed: %v", err)
	}
	if svc.Stats().Shed != 1 {
		t.Fatalf("stats: %+v", svc.Stats())
	}
}

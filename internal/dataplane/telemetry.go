package dataplane

import (
	"fmt"
	"sort"

	"hybriddkg/internal/telemetry"
)

// KeySnapshot is the JSON-ready view of one serving key for the
// introspection endpoint (/keys) and `dkgnode top`.
type KeySnapshot struct {
	ID           uint64 `json:"id"`
	State        string `json:"state"`
	QueueDepth   int    `json:"queue_depth"`
	Inflight     int    `json:"inflight"`
	Reservoir    int    `json:"nonce_reservoir"`
	Provisioning int    `json:"provisioning"`
	BeaconHigh   uint64 `json:"beacon_high,omitempty"`
	Requests     uint64 `json:"requests_total"`
	Suspects     int    `json:"suspects,omitempty"`
}

// KeysSnapshot returns a point-in-time view of every installed key,
// ordered by key ID. It takes the service lock briefly; intended for
// scrape-frequency calls, not per-request use.
func (s *Service) KeysSnapshot() []KeySnapshot {
	s.mu.Lock()
	out := make([]KeySnapshot, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, KeySnapshot{
			ID:           uint64(k.id),
			State:        k.state.String(),
			QueueDepth:   len(k.queue),
			Inflight:     len(k.inflight),
			Reservoir:    len(k.reservoir),
			Provisioning: k.provisioning,
			BeaconHigh:   k.beaconHi,
			Requests:     k.served,
			Suspects:     len(k.suspects),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterMetrics exposes the service's activity counters and per-key
// serving state as scrape-time telemetry samples. Everything reads
// existing stats under the service lock, so the request hot path pays
// nothing for scraping.
func (s *Service) RegisterMetrics(reg *telemetry.Registry) {
	ctr := func(name, help string, v uint64) telemetry.Sample {
		return telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)}
	}
	gau := func(name, help string, v int) telemetry.Sample {
		return telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindGauge, Value: float64(v)}
	}
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		st := s.Stats()
		emit(ctr("dataplane_requests_total", "Client operations admitted", st.Requests))
		emit(ctr(`dataplane_shed_total{reason="rate"}`, "Requests shed by admission control", st.ShedRate))
		emit(ctr(`dataplane_shed_total{reason="backlog"}`, "Requests shed by admission control", st.ShedBacklog))
		emit(ctr(`dataplane_shed_total{reason="state"}`, "Requests shed by admission control", st.ShedState))
		emit(ctr("dataplane_batches_total", "Partial-request batches fanned out", st.Batches))
		emit(ctr("dataplane_batch_items_total", "Requests carried by those batches", st.Items))
		emit(ctr("dataplane_result_cache_hits_total", "Aggregator results served from cache", st.CacheHits))
		emit(ctr("dataplane_coalesced_total", "Duplicate digests attached to in-flight operations", st.Coalesced))
		emit(ctr("dataplane_peer_items_total", "Peer-side partial operations answered", st.PeerItems))
		emit(ctr("dataplane_peer_cache_hits_total", "Peer answers served from the partial cache", st.PeerCacheHits))
		emit(ctr("dataplane_evicted_total", "Bad partials evicted after verification", st.Evicted))
		for _, k := range s.KeysSnapshot() {
			id := fmt.Sprintf("%d", k.ID)
			emit(telemetry.Sample{
				Name: fmt.Sprintf("dataplane_key_requests_total{key=%q}", id),
				Help: "Requests admitted per key", Kind: telemetry.KindCounter,
				Value: float64(k.Requests),
			})
			emit(gau(fmt.Sprintf("dataplane_key_queue_depth{key=%q}", id),
				"Queued requests per key", k.QueueDepth))
			emit(gau(fmt.Sprintf("dataplane_key_inflight{key=%q}", id),
				"In-flight batched requests per key", k.Inflight))
			emit(gau(fmt.Sprintf("dataplane_key_nonce_reservoir{key=%q}", id),
				"Pre-generated signing nonces per key", k.Reservoir))
		}
	})
}

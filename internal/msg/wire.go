package msg

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Writer builds canonical binary encodings. All protocol messages use
// the same primitives: big-endian fixed-width integers, length-
// prefixed big.Ints and byte strings. A Writer never fails; bounds
// are enforced on the Reader side.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Node appends a NodeID.
func (w *Writer) Node(id NodeID) { w.U64(uint64(id)) }

// Nodes appends a length-prefixed NodeID list.
func (w *Writer) Nodes(ids []NodeID) {
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Node(id)
	}
}

// Big appends a length-prefixed big.Int (nil encodes as length 0…
// which decodes to zero; protocols must validate ranges themselves).
func (w *Writer) Big(v *big.Int) {
	if v == nil {
		w.U32(0)
		return
	}
	b := v.Bytes()
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Bool appends a boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Reader decodes encodings produced by Writer. The first decoding
// error sticks: all subsequent reads return zero values, and Err
// reports the failure, so message decoders can read a full structure
// and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Done returns an error unless the buffer was fully and cleanly
// consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated (need %d bytes at offset %d)", ErrBadEnvelope, n, r.off)
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Node reads a NodeID.
func (r *Reader) Node() NodeID { return NodeID(r.U64()) }

// Nodes reads a length-prefixed NodeID list.
func (r *Reader) Nodes() []NodeID {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > (len(r.buf)-r.off)/8 {
		r.err = fmt.Errorf("%w: node list length %d too large", ErrBadEnvelope, n)
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = r.Node()
	}
	return out
}

// Big reads a length-prefixed big.Int. Non-minimal encodings (a
// leading zero byte) are rejected: Writer.Big always emits the
// minimal form, so accepting padded variants would give one integer
// many byte forms and break transcript canonicity.
func (r *Reader) Big() *big.Int {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	b := r.take(int(n))
	if r.err != nil {
		return nil
	}
	if len(b) > 0 && b[0] == 0 {
		r.err = fmt.Errorf("%w: non-minimal big.Int encoding (leading zero)", ErrBadEnvelope)
		return nil
	}
	return new(big.Int).SetBytes(b)
}

// Blob reads a length-prefixed byte string (copied).
func (r *Reader) Blob() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	b := r.take(int(n))
	if r.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

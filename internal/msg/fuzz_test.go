package msg_test

import (
	"bytes"
	"math/big"
	"testing"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/vss"
)

// fullCodec registers every protocol decoder, as the WAL replay and
// TCP read paths do, so the fuzzer exercises the real decode surface.
func fullCodec(tb testing.TB) *msg.Codec {
	tb.Helper()
	c := msg.NewCodec()
	if err := vss.RegisterCodec(c, group.Test256()); err != nil {
		tb.Fatal(err)
	}
	if err := dkg.RegisterCodec(c); err != nil {
		tb.Fatal(err)
	}
	return c
}

// seedEnvelopes builds a corpus of well-formed envelopes around real
// protocol payloads.
func seedEnvelopes(tb testing.TB) [][]byte {
	tb.Helper()
	session := vss.SessionID{Dealer: 1, Tau: 3}
	bodies := []msg.Body{
		&vss.HelpMsg{Session: session},
		&vss.RecShareMsg{Session: session, Share: big.NewInt(12345)},
		&vss.EchoMsg{Session: session, CHash: [32]byte{1, 2, 3}, Alpha: big.NewInt(99)},
		&dkg.HelpMsg{Tau: 3},
	}
	var out [][]byte
	for i, b := range bodies {
		env, err := msg.SealSession(msg.NodeID(i+1), 2, 5, b)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, msg.EncodeEnvelope(env))
	}
	return out
}

// FuzzDecodeEnvelope hardens the WAL record codec: arbitrary bytes
// must never panic, and every successful decode must round-trip to
// identical canonical bytes before its payload is handed to the
// protocol decoders (which must themselves survive the corrupt
// payload).
func FuzzDecodeEnvelope(f *testing.F) {
	for _, seed := range seedEnvelopes(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	codec := fullCodec(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := msg.DecodeEnvelope(data)
		if err != nil {
			return
		}
		reEnc := msg.EncodeEnvelope(env)
		if !bytes.Equal(reEnc, data) {
			t.Fatalf("decode/encode not canonical: %x != %x", reEnc, data)
		}
		env2, err := msg.DecodeEnvelope(reEnc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if env2.From != env.From || env2.To != env.To || env2.Session != env.Session || env2.Type != env.Type {
			t.Fatal("round trip changed envelope header")
		}
		// The payload is untrusted: protocol decoders must reject or
		// accept it without panicking, as on the WAL replay path.
		body, err := codec.Decode(env.Type, env.Payload)
		if err == nil && body == nil {
			t.Fatal("decoder returned nil body without error")
		}
	})
}

// FuzzReaderBig hardens the canonical big.Int decoder: arbitrary
// bytes must never panic, and every accepted integer must re-encode
// to exactly the bytes it was decoded from (single canonical form).
func FuzzReaderBig(f *testing.F) {
	seed := msg.NewWriter(32)
	seed.Big(big.NewInt(0))
	seed.Big(big.NewInt(1))
	seed.Big(new(big.Int).Lsh(big.NewInt(1), 255))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 1, 0})          // padded zero
	f.Add([]byte{0, 0, 0, 2, 0, 1})       // padded one
	f.Add([]byte{0, 0, 0, 3, 0x12, 0x34}) // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		r := msg.NewReader(data)
		for {
			v := r.Big()
			if r.Err() != nil {
				if v != nil {
					t.Fatal("value returned alongside error")
				}
				return
			}
			if v == nil {
				t.Fatal("nil value without error")
			}
			w := msg.NewWriter(16)
			w.Big(v)
			r2 := msg.NewReader(w.Bytes())
			v2 := r2.Big()
			if r2.Err() != nil || v2.Cmp(v) != 0 {
				t.Fatalf("re-encode of %v not canonical: %v (err %v)", v, v2, r2.Err())
			}
			if r.Done() == nil {
				return
			}
		}
	})
}

// FuzzDecodeBodyLog hardens the state-codec log framing used inside
// durable snapshots.
func FuzzDecodeBodyLog(f *testing.F) {
	codec := fullCodec(f)
	w := msg.NewWriter(64)
	log := map[msg.NodeID][]msg.Body{
		2: {&vss.HelpMsg{Session: vss.SessionID{Dealer: 1, Tau: 1}}},
	}
	if err := msg.EncodeBodyLog(w, log); err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bytes())
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := msg.NewReader(data)
		decoded, err := codec.DecodeBodyLog(r)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without error.
		w := msg.NewWriter(len(data))
		if err := msg.EncodeBodyLog(w, decoded); err != nil {
			t.Fatalf("re-encode of decoded log failed: %v", err)
		}
	})
}

package msg

import (
	"fmt"
	"math/big"
	"sort"
)

// EncodeEnvelope returns the canonical binary form of an Envelope:
// from ‖ to ‖ session ‖ type ‖ length-prefixed payload. The durable
// write-ahead log (internal/store) journals delivered envelopes in this
// form, and tooling can use it to inspect logged traffic offline.
func EncodeEnvelope(env Envelope) []byte {
	w := NewWriter(29 + len(env.Payload))
	w.Node(env.From)
	w.Node(env.To)
	w.U64(uint64(env.Session))
	w.U8(uint8(env.Type))
	w.Blob(env.Payload)
	return w.Bytes()
}

// EncodeBody appends a Body's tag and length-prefixed payload to w —
// the form the durable state codecs use for logged outgoing messages.
func EncodeBody(w *Writer, b Body) error {
	payload, err := b.MarshalBinary()
	if err != nil {
		return fmt.Errorf("msg: encode %v: %w", b.MsgType(), err)
	}
	w.U8(uint8(b.MsgType()))
	w.Blob(payload)
	return nil
}

// DecodeBody reads an encoding produced by EncodeBody and decodes it
// through the codec.
func (c *Codec) DecodeBody(r *Reader) (Body, error) {
	t := Type(r.U8())
	payload := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return c.Decode(t, payload)
}

// --- state-codec primitives ------------------------------------------
//
// The durable state codecs (vss.Node.MarshalState, dkg.Node.
// MarshalState) build on the same canonical primitives as the wire
// messages, plus the nullable/set/log forms below. Map-derived
// encodings are emitted in sorted key order so identical protocol
// state always serialises to identical bytes.

// BigPtr appends a nullable big.Int (presence flag + value).
func (w *Writer) BigPtr(v *big.Int) {
	w.Bool(v != nil)
	if v != nil {
		w.Big(v)
	}
}

// BigPtr reads a nullable big.Int written by Writer.BigPtr.
func (r *Reader) BigPtr() *big.Int {
	if !r.Bool() {
		return nil
	}
	return r.Big()
}

// NodeSet appends a set of node identifiers in sorted order.
func (w *Writer) NodeSet(set map[NodeID]bool) {
	ids := make([]NodeID, 0, len(set))
	for id, ok := range set {
		if ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Nodes(ids)
}

// NodeSet reads a set written by Writer.NodeSet.
func (r *Reader) NodeSet() map[NodeID]bool {
	ids := r.Nodes()
	set := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// ListLen reads a u32 length and bounds it, mirroring the wire
// decoders' guards so corrupt snapshots cannot force huge allocations.
func (r *Reader) ListLen(max int) (int, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if int(n) > max {
		return 0, fmt.Errorf("%w: list length %d exceeds %d", ErrBadEnvelope, n, max)
	}
	return int(n), nil
}

// logListMax bounds decoded outgoing-log sizes.
const logListMax = 1 << 20

// EncodeBodyLog appends an outgoing message log (the recovery
// protocol's B set): destinations in sorted order, each with its
// logged bodies in send order.
func EncodeBodyLog(w *Writer, log map[NodeID][]Body) error {
	ids := make([]NodeID, 0, len(log))
	for id := range log {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Node(id)
		bodies := log[id]
		w.U32(uint32(len(bodies)))
		for _, b := range bodies {
			if err := EncodeBody(w, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeBodyLog reads a log written by EncodeBodyLog, decoding each
// body through the codec.
func (c *Codec) DecodeBodyLog(r *Reader) (map[NodeID][]Body, error) {
	n, err := r.ListLen(logListMax)
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID][]Body, n)
	for i := 0; i < n; i++ {
		id := r.Node()
		nBodies, err := r.ListLen(logListMax)
		if err != nil {
			return nil, err
		}
		bodies := make([]Body, 0, nBodies)
		for j := 0; j < nBodies; j++ {
			b, err := c.DecodeBody(r)
			if err != nil {
				return nil, fmt.Errorf("msg: decode logged message: %w", err)
			}
			bodies = append(bodies, b)
		}
		out[id] = bodies
	}
	return out, nil
}

// EncodeCounterMap appends a NodeID→count map in sorted key order (the
// per-requester help budgets c_ℓ of the recovery protocol).
func EncodeCounterMap(w *Writer, m map[NodeID]int) {
	ids := make([]NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Node(id)
		w.U32(uint32(m[id]))
	}
}

// DecodeCounterMap reads a map written by EncodeCounterMap.
func DecodeCounterMap(r *Reader) (map[NodeID]int, error) {
	n, err := r.ListLen(logListMax)
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID]int, n)
	for i := 0; i < n; i++ {
		id := r.Node()
		out[id] = int(r.U32())
	}
	return out, nil
}

// DecodeEnvelope parses an encoding produced by EncodeEnvelope. The
// payload is validated only structurally (length framing); decoding it
// into a typed Body is the codec's job, so corrupt protocol bytes
// surface there, after the envelope shape has been checked.
func DecodeEnvelope(data []byte) (Envelope, error) {
	r := NewReader(data)
	env := Envelope{
		From:    r.Node(),
		To:      r.Node(),
		Session: SessionID(r.U64()),
		Type:    Type(r.U8()),
	}
	env.Payload = r.Blob()
	if err := r.Done(); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

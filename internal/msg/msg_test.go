package msg

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// fakeBody is a minimal Body for codec tests.
type fakeBody struct {
	payload []byte
}

func (f fakeBody) MsgType() Type                  { return TVSSSend }
func (f fakeBody) MarshalBinary() ([]byte, error) { return f.payload, nil }

func TestTypeStrings(t *testing.T) {
	seen := make(map[string]Type)
	for tt := TVSSSend; tt <= TVSSMatrix; tt++ {
		s := tt.String()
		if s == "" {
			t.Fatalf("empty String for %d", tt)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("types %d and %d share string %q", prev, tt, s)
		}
		seen[s] = tt
	}
	if Type(200).String() == "" {
		t.Error("unknown type has empty string")
	}
}

func TestCodecRegisterDecode(t *testing.T) {
	c := NewCodec()
	if err := c.Register(TVSSSend, func(data []byte) (Body, error) {
		return fakeBody{payload: data}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(TVSSSend, nil); err == nil {
		t.Error("duplicate registration succeeded")
	}
	body, err := c.Decode(TVSSSend, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body.(fakeBody).payload) != "hi" {
		t.Error("payload mismatch")
	}
	if _, err := c.Decode(TVSSEcho, nil); err == nil {
		t.Error("decode of unregistered type succeeded")
	}
}

func TestSealOpen(t *testing.T) {
	c := NewCodec()
	if err := c.Register(TVSSSend, func(data []byte) (Body, error) {
		return fakeBody{payload: data}, nil
	}); err != nil {
		t.Fatal(err)
	}
	env, err := Seal(1, 2, fakeBody{payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if env.From != 1 || env.To != 2 || env.Type != TVSSSend {
		t.Errorf("envelope fields: %+v", env)
	}
	body, err := c.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(body.(fakeBody).payload) != "x" {
		t.Error("round-trip mismatch")
	}
}

func TestWireSize(t *testing.T) {
	if got := WireSize(fakeBody{payload: []byte("abcd")}); got != 5 {
		t.Errorf("WireSize = %d, want 5", got)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.U32(1 << 20)
	w.U64(1 << 40)
	w.Node(33)
	w.Nodes([]NodeID{1, 2, 3})
	w.Big(big.NewInt(123456789))
	w.Big(nil)
	w.Blob([]byte("blob"))
	w.Bool(true)
	w.Bool(false)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 1<<20 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Node(); got != 33 {
		t.Errorf("Node = %d", got)
	}
	nodes := r.Nodes()
	if len(nodes) != 3 || nodes[0] != 1 || nodes[2] != 3 {
		t.Errorf("Nodes = %v", nodes)
	}
	if got := r.Big(); got.Int64() != 123456789 {
		t.Errorf("Big = %v", got)
	}
	if got := r.Big(); got.Sign() != 0 {
		t.Errorf("nil Big decoded to %v", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte("blob")) {
		t.Errorf("Blob = %q", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(16)
	w.U64(42)
	data := w.Bytes()
	r := NewReader(data[:4])
	_ = r.U64()
	if r.Err() == nil {
		t.Error("truncated U64 not detected")
	}
	// Error sticks.
	_ = r.U8()
	if r.Err() == nil {
		t.Error("sticky error cleared")
	}
}

func TestReaderTrailing(t *testing.T) {
	w := NewWriter(8)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	_ = r.U8()
	if err := r.Done(); err == nil {
		t.Error("trailing byte not detected")
	}
}

func TestReaderHostileLengths(t *testing.T) {
	// A node list claiming 2^31 entries must not allocate.
	w := NewWriter(8)
	w.U32(1 << 31)
	r := NewReader(w.Bytes())
	if nodes := r.Nodes(); nodes != nil || r.Err() == nil {
		t.Error("hostile node list length accepted")
	}
	// A blob claiming more bytes than remain must fail cleanly.
	w2 := NewWriter(8)
	w2.U32(1000)
	r2 := NewReader(w2.Bytes())
	if b := r2.Blob(); b != nil || r2.Err() == nil {
		t.Error("hostile blob length accepted")
	}
}

// TestReaderBigMinimality: only the minimal byte form of an integer
// decodes; a leading zero byte (same value, longer encoding) is a
// malformed envelope.
func TestReaderBigMinimality(t *testing.T) {
	w := NewWriter(16)
	w.Big(big.NewInt(0x1234))
	r := NewReader(w.Bytes())
	if got := r.Big(); got == nil || got.Int64() != 0x1234 {
		t.Fatalf("minimal encoding rejected: %v (err %v)", got, r.Err())
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}

	// Same value, padded with one leading zero byte.
	padded := NewWriter(16)
	padded.U32(3)
	padded.buf = append(padded.buf, 0x00, 0x12, 0x34)
	r2 := NewReader(padded.Bytes())
	if got := r2.Big(); got != nil || r2.Err() == nil {
		t.Fatalf("non-minimal encoding accepted: %v", got)
	}
	// The error sticks.
	_ = r2.U8()
	if r2.Err() == nil {
		t.Error("sticky error cleared after bad Big")
	}

	// A bare zero-length encoding is the canonical zero and stays valid.
	zero := NewWriter(8)
	zero.Big(big.NewInt(0))
	r3 := NewReader(zero.Bytes())
	if got := r3.Big(); got == nil || got.Sign() != 0 || r3.Err() != nil {
		t.Fatalf("canonical zero rejected: %v (err %v)", got, r3.Err())
	}

	// But an explicit single zero byte is the padded form of zero.
	zeroByte := NewWriter(8)
	zeroByte.U32(1)
	zeroByte.buf = append(zeroByte.buf, 0x00)
	r4 := NewReader(zeroByte.Bytes())
	if got := r4.Big(); got != nil || r4.Err() == nil {
		t.Fatalf("padded zero accepted: %v", got)
	}
}

// TestQuickWireRoundTrip fuzzes the primitive round trip.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, blob []byte, flag bool) bool {
		w := NewWriter(32)
		w.U8(a)
		w.U32(b)
		w.U64(c)
		w.Blob(blob)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		okA := r.U8() == a
		okB := r.U32() == b
		okC := r.U64() == c
		okBlob := bytes.Equal(r.Blob(), blob)
		okFlag := r.Bool() == flag
		return okA && okB && okC && okBlob && okFlag && r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSealSession: envelopes carry their session identifier; Seal is
// the legacy session-0 form.
func TestSealSession(t *testing.T) {
	body := fakeBody{payload: []byte{1, 2, 3}}
	env, err := SealSession(1, 2, 7, body)
	if err != nil {
		t.Fatal(err)
	}
	if env.Session != 7 || env.From != 1 || env.To != 2 {
		t.Fatalf("bad envelope: %+v", env)
	}
	legacy, err := Seal(1, 2, body)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Session != 0 {
		t.Fatalf("Seal produced session %v", legacy.Session)
	}
	if got := SessionID(7).String(); got != "session(7)" {
		t.Fatalf("String() = %q", got)
	}
}

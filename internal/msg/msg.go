// Package msg defines the message substrate shared by every protocol
// in the repository: node identifiers, session identifiers, the Body
// interface implemented by all protocol messages, and a codec registry
// used by the TCP transport to decode messages received from the wire.
//
// The paper's system design (§7) is a deterministic state machine
// driven by operator, network and timer messages; Body models the
// network messages. Protocol packages (vss, dkg, rbc, groupmod,
// proactive) define their own concrete Body types and register
// decoders with a Codec.
package msg

import (
	"errors"
	"fmt"
)

// NodeID is a 1-based node index; the paper assumes each node has a
// unique identifying index published alongside its certificate (§2.3).
type NodeID int64

// SessionID identifies one protocol instance multiplexed over a shared
// runtime (the φ/τ counters of §5–§6 generalised to arbitrary
// concurrent instances). Session 0 is the legacy single-instance
// session used by runtimes that predate multiplexing.
type SessionID uint64

// String implements fmt.Stringer.
func (s SessionID) String() string { return fmt.Sprintf("session(%d)", uint64(s)) }

// Type tags every wire message. Values are centralised here so the
// codec registry cannot collide across protocol packages.
type Type uint8

// Message type tags. Grouped by protocol.
const (
	// HybridVSS (Fig. 1) and Rec.
	TVSSSend Type = iota + 1
	TVSSEcho
	TVSSReady
	TVSSHelp
	TRecShare

	// DKG (Figs. 2–3).
	TDKGSend
	TDKGEcho
	TDKGReady
	TDKGLeadCh
	TDKGHelp

	// Reliable broadcast (Backes–Cachin, used by group modification).
	TRBCSend
	TRBCEcho
	TRBCReady

	// Group modification (§6) and proactive phases (§5).
	TGroupModProposal
	TClockTick
	TSubshare

	// Wire format v2: commitment dedup by hash reference. A node that
	// buffered points for an unknown commitment hash pulls the full
	// matrix from a peer that referenced it (TVSSFetch) and receives it
	// as TVSSMatrix.
	TVSSFetch
	TVSSMatrix

	// Threshold data plane (internal/dataplane): partial-operation
	// fan-out between an aggregator and its peers, and aux-session
	// provisioning (nonce reservoirs, beacon windows).
	TDataReq
	TDataResp
	TDataPrepare

	// Quorum certificates (certificate mode): committee members send
	// signed echo/ready attestations to sampled relays (TVSSCertSign /
	// TDKGCertSign); relays multicast the assembled certificates
	// (TVSSCert / TDKGCert).
	TVSSCertSign
	TVSSCert
	TDKGCertSign
	TDKGCert
)

// String implements fmt.Stringer for diagnostics and accounting keys.
func (t Type) String() string {
	switch t {
	case TVSSSend:
		return "vss-send"
	case TVSSEcho:
		return "vss-echo"
	case TVSSReady:
		return "vss-ready"
	case TVSSHelp:
		return "vss-help"
	case TRecShare:
		return "rec-share"
	case TDKGSend:
		return "dkg-send"
	case TDKGEcho:
		return "dkg-echo"
	case TDKGReady:
		return "dkg-ready"
	case TDKGLeadCh:
		return "dkg-lead-ch"
	case TDKGHelp:
		return "dkg-help"
	case TRBCSend:
		return "rbc-send"
	case TRBCEcho:
		return "rbc-echo"
	case TRBCReady:
		return "rbc-ready"
	case TGroupModProposal:
		return "groupmod-proposal"
	case TClockTick:
		return "clock-tick"
	case TSubshare:
		return "subshare"
	case TVSSFetch:
		return "vss-fetch"
	case TVSSMatrix:
		return "vss-matrix"
	case TDataReq:
		return "data-req"
	case TDataResp:
		return "data-resp"
	case TDataPrepare:
		return "data-prepare"
	case TVSSCertSign:
		return "vss-cert-sign"
	case TVSSCert:
		return "vss-cert"
	case TDKGCertSign:
		return "dkg-cert-sign"
	case TDKGCert:
		return "dkg-cert"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Body is a protocol message. Implementations must be immutable after
// construction (they are shared across simulated nodes without
// copying) and must produce a canonical binary encoding.
type Body interface {
	// MsgType returns the wire tag.
	MsgType() Type
	// MarshalBinary encodes the message payload (excluding the tag).
	MarshalBinary() ([]byte, error)
}

// Errors returned by the codec.
var (
	ErrUnknownType   = errors.New("msg: unknown message type")
	ErrDuplicateType = errors.New("msg: decoder already registered")
	ErrBadEnvelope   = errors.New("msg: malformed envelope")
)

// Decoder turns a payload back into a Body. Decoders typically close
// over group parameters and signature schemes.
type Decoder func(data []byte) (Body, error)

// Codec is a registry of per-type decoders. It is how the transport
// layer reconstructs typed messages; the simulator passes Body values
// directly and uses the codec only for byte accounting.
type Codec struct {
	decoders map[Type]Decoder
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{decoders: make(map[Type]Decoder)}
}

// Register installs a decoder for t.
func (c *Codec) Register(t Type, d Decoder) error {
	if _, dup := c.decoders[t]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicateType, t)
	}
	c.decoders[t] = d
	return nil
}

// Decode reconstructs a Body from its tag and payload.
func (c *Codec) Decode(t Type, payload []byte) (Body, error) {
	d, ok := c.decoders[t]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownType, t)
	}
	return d(payload)
}

// Envelope is the unit carried by the transport: a routed, typed,
// encoded message tagged with the protocol instance it belongs to.
type Envelope struct {
	From, To NodeID
	Session  SessionID
	Type     Type
	Payload  []byte
}

// Seal encodes a Body into an Envelope for the legacy session 0.
func Seal(from, to NodeID, body Body) (Envelope, error) {
	return SealSession(from, to, 0, body)
}

// SealSession encodes a Body into an Envelope routed to one session.
func SealSession(from, to NodeID, session SessionID, body Body) (Envelope, error) {
	payload, err := body.MarshalBinary()
	if err != nil {
		return Envelope{}, fmt.Errorf("msg: seal %v: %w", body.MsgType(), err)
	}
	return Envelope{From: from, To: to, Session: session, Type: body.MsgType(), Payload: payload}, nil
}

// Open decodes an Envelope back into a Body using the codec.
func (c *Codec) Open(env Envelope) (Body, error) {
	return c.Decode(env.Type, env.Payload)
}

// WireSize returns the encoded size of a body in bytes including its
// one-byte tag, as counted by the communication-complexity benches.
func WireSize(body Body) int {
	payload, err := body.MarshalBinary()
	if err != nil {
		return 1
	}
	return 1 + len(payload)
}

// Package thresh builds the threshold-cryptography applications that
// motivate the paper (§1): dealerless threshold Schnorr signatures,
// threshold ElGamal decryption with Chaum–Pedersen-verified partial
// decryptions, and a commit-reveal random beacon — all operating on
// shares and Feldman vector commitments produced by the DKG.
//
// Threshold Schnorr needs a fresh shared nonce per signature; the
// protocol generates it with another DKG run (the paper's point that
// DKG is the primitive underlying distributed coin tossing and
// threshold signing, §1/§4). Given key shares s_i committed by V and
// nonce shares k_i committed by Vk with R = Vk's public key, node i's
// partial signature on m is σ_i = k_i + c·s_i for c = H(R ‖ pk ‖ m);
// σ_i is a degree-t share of σ = k + c·s, so any t+1 verified
// partials interpolate to a standard Schnorr signature (R, σ).
package thresh

import (
	"errors"
	"fmt"
	"math/big"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
)

// Errors returned by threshold operations.
var (
	ErrBadPartial   = errors.New("thresh: invalid partial")
	ErrNotEnough    = errors.New("thresh: not enough valid partials")
	ErrBadCipher    = errors.New("thresh: malformed ciphertext")
	ErrBadArguments = errors.New("thresh: invalid arguments")
)

// KeyShare is one node's slice of a shared key: the scalar share plus
// the group-wide vector commitment it verifies against.
type KeyShare struct {
	Self  msg.NodeID
	Share *big.Int
	V     *commit.Vector
}

// Validate checks internal consistency.
func (k KeyShare) Validate() error {
	if k.Share == nil || k.V == nil {
		return fmt.Errorf("%w: nil key share fields", ErrBadArguments)
	}
	if !k.V.VerifyShare(int64(k.Self), k.Share) {
		return fmt.Errorf("%w: share does not match commitment", ErrBadArguments)
	}
	return nil
}

// PartialSig is one node's signature share.
type PartialSig struct {
	Signer msg.NodeID
	Sigma  *big.Int
}

// Signature is a standard Schnorr signature (R, σ) verifiable against
// the shared public key with plain single-party verification.
type Signature struct {
	R     group.Element
	Sigma *big.Int
}

// challenge computes c = H(R ‖ pk ‖ m).
func challenge(gr *group.Group, bigR, pk group.Element, message []byte) *big.Int {
	return gr.HashToScalar("hybriddkg/thresh-schnorr/v1", bigR.Bytes(), pk.Bytes(), message)
}

// PartialSign produces node i's signature share using its long-term
// key share and a fresh nonce share (from a nonce DKG).
func PartialSign(gr *group.Group, key, nonce KeyShare, message []byte) (PartialSig, error) {
	if key.Self != nonce.Self {
		return PartialSig{}, fmt.Errorf("%w: key/nonce signer mismatch", ErrBadArguments)
	}
	if err := key.Validate(); err != nil {
		return PartialSig{}, err
	}
	if err := nonce.Validate(); err != nil {
		return PartialSig{}, err
	}
	c := challenge(gr, nonce.V.PublicKey(), key.V.PublicKey(), message)
	sigma := gr.AddQ(nonce.Share, gr.MulQ(c, key.Share))
	return PartialSig{Signer: key.Self, Sigma: sigma}, nil
}

// VerifyPartial checks σ_i against the two commitments:
// g^{σ_i} = Vk(i) · V(i)^c.
func VerifyPartial(gr *group.Group, keyV, nonceV *commit.Vector, message []byte, p PartialSig) bool {
	if p.Sigma == nil || !gr.IsScalar(p.Sigma) {
		return false
	}
	c := challenge(gr, nonceV.PublicKey(), keyV.PublicKey(), message)
	lhs := gr.GExp(p.Sigma)
	rhs := gr.Mul(nonceV.Eval(int64(p.Signer)), gr.Exp(keyV.Eval(int64(p.Signer)), c))
	return lhs.Equal(rhs)
}

// Combine verifies the partials and interpolates the first t+1 valid
// ones into a full signature.
func Combine(gr *group.Group, keyV, nonceV *commit.Vector, t int, message []byte, partials []PartialSig) (Signature, error) {
	pts := make([]poly.Point, 0, t+1)
	seen := make(map[msg.NodeID]bool, len(partials))
	for _, p := range partials {
		if seen[p.Signer] {
			continue
		}
		if !VerifyPartial(gr, keyV, nonceV, message, p) {
			continue
		}
		seen[p.Signer] = true
		pts = append(pts, poly.Point{X: int64(p.Signer), Y: p.Sigma})
		if len(pts) == t+1 {
			break
		}
	}
	if len(pts) < t+1 {
		return Signature{}, fmt.Errorf("%w: %d of %d needed", ErrNotEnough, len(pts), t+1)
	}
	sigma, err := poly.Interpolate(gr.Q(), pts, 0)
	if err != nil {
		return Signature{}, err
	}
	sig := Signature{R: nonceV.PublicKey(), Sigma: sigma}
	if !Verify(gr, keyV.PublicKey(), message, sig) {
		return Signature{}, fmt.Errorf("%w: combined signature invalid", ErrBadPartial)
	}
	return sig, nil
}

// Verify checks a combined signature exactly like a single-party
// Schnorr verifier: g^σ = R · pk^c with c = H(R ‖ pk ‖ m).
func Verify(gr *group.Group, pk group.Element, message []byte, sig Signature) bool {
	if sig.R == nil || sig.Sigma == nil {
		return false
	}
	if !gr.IsElement(sig.R) || !gr.IsScalar(sig.Sigma) {
		return false
	}
	c := challenge(gr, sig.R, pk, message)
	lhs := gr.GExp(sig.Sigma)
	rhs := gr.Mul(sig.R, gr.Exp(pk, c))
	return lhs.Equal(rhs)
}

// Package thresh builds the threshold-cryptography applications that
// motivate the paper (§1): dealerless threshold Schnorr signatures,
// threshold ElGamal decryption with Chaum–Pedersen-verified partial
// decryptions, and a commit-reveal random beacon — all operating on
// shares and Feldman vector commitments produced by the DKG.
//
// Threshold Schnorr needs a fresh shared nonce per signature; the
// protocol generates it with another DKG run (the paper's point that
// DKG is the primitive underlying distributed coin tossing and
// threshold signing, §1/§4). Given key shares s_i committed by V and
// nonce shares k_i committed by Vk with R = Vk's public key, node i's
// partial signature on m is σ_i = k_i + c·s_i for c = H(R ‖ pk ‖ m);
// σ_i is a degree-t share of σ = k + c·s, so any t+1 verified
// partials interpolate to a standard Schnorr signature (R, σ).
package thresh

import (
	"errors"
	"fmt"
	"math/big"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
)

// Errors returned by threshold operations.
var (
	ErrBadPartial   = errors.New("thresh: invalid partial")
	ErrNotEnough    = errors.New("thresh: not enough valid partials")
	ErrBadCipher    = errors.New("thresh: malformed ciphertext")
	ErrBadArguments = errors.New("thresh: invalid arguments")
)

// PartialsError reports a failed combination together with the
// identity of every submitted partial that failed verification. A
// data plane uses the Bad list to evict the offending senders and
// re-request partials from other share holders; errors.Is against
// ErrNotEnough keeps working via Unwrap.
type PartialsError struct {
	// Bad lists the signers (or decryptors) whose partials failed
	// verification, in submission order, deduplicated.
	Bad []msg.NodeID
	// Valid counts the distinct valid partials seen.
	Valid int
	// Needed is the reconstruction threshold t+1.
	Needed int
}

// Error implements error.
func (e *PartialsError) Error() string {
	if len(e.Bad) == 0 {
		return fmt.Sprintf("%v: %d of %d needed", ErrNotEnough, e.Valid, e.Needed)
	}
	return fmt.Sprintf("%v: %d of %d needed (invalid partials from %v)",
		ErrNotEnough, e.Valid, e.Needed, e.Bad)
}

// Unwrap makes errors.Is(err, ErrNotEnough) hold.
func (e *PartialsError) Unwrap() error { return ErrNotEnough }

// KeyShare is one node's slice of a shared key: the scalar share plus
// the group-wide vector commitment it verifies against.
type KeyShare struct {
	Self  msg.NodeID
	Share *big.Int
	V     *commit.Vector
}

// Validate checks internal consistency.
func (k KeyShare) Validate() error {
	if k.Share == nil || k.V == nil {
		return fmt.Errorf("%w: nil key share fields", ErrBadArguments)
	}
	if !k.V.VerifyShare(int64(k.Self), k.Share) {
		return fmt.Errorf("%w: share does not match commitment", ErrBadArguments)
	}
	return nil
}

// PartialSig is one node's signature share.
type PartialSig struct {
	Signer msg.NodeID
	Sigma  *big.Int
}

// Signature is a standard Schnorr signature (R, σ) verifiable against
// the shared public key with plain single-party verification.
type Signature struct {
	R     group.Element
	Sigma *big.Int
}

// challenge computes c = H(R ‖ pk ‖ m).
func challenge(gr *group.Group, bigR, pk group.Element, message []byte) *big.Int {
	return gr.HashToScalar("hybriddkg/thresh-schnorr/v1", bigR.Bytes(), pk.Bytes(), message)
}

// Challenge exposes the signing challenge c = H(R ‖ pk ‖ m) for hot
// paths that compute it once and reuse it across PartialSignPre calls
// and batched verification.
func Challenge(gr *group.Group, bigR, pk group.Element, message []byte) *big.Int {
	return challenge(gr, bigR, pk, message)
}

// PartialSignPre computes σ_i = k_i + c·s_i for a precomputed
// challenge, skipping the per-call share re-validation that
// PartialSign performs. It is the data-plane hot path: shares are
// validated once against their commitments when a key (or nonce) is
// installed, after which each request costs two scalar operations.
func PartialSignPre(gr *group.Group, self msg.NodeID, keyShare, nonceShare, c *big.Int) PartialSig {
	return PartialSig{Signer: self, Sigma: gr.AddQ(nonceShare, gr.MulQ(c, keyShare))}
}

// PartialSign produces node i's signature share using its long-term
// key share and a fresh nonce share (from a nonce DKG).
func PartialSign(gr *group.Group, key, nonce KeyShare, message []byte) (PartialSig, error) {
	if key.Self != nonce.Self {
		return PartialSig{}, fmt.Errorf("%w: key/nonce signer mismatch", ErrBadArguments)
	}
	if err := key.Validate(); err != nil {
		return PartialSig{}, err
	}
	if err := nonce.Validate(); err != nil {
		return PartialSig{}, err
	}
	c := challenge(gr, nonce.V.PublicKey(), key.V.PublicKey(), message)
	sigma := gr.AddQ(nonce.Share, gr.MulQ(c, key.Share))
	return PartialSig{Signer: key.Self, Sigma: sigma}, nil
}

// VerifyPartial checks σ_i against the two commitments, as the single
// multi-exp identity check g^{−σ_i} · Vk(i) · V(i)^c = 1 (the
// commitment evaluations Vk(i), V(i) stay on the Horner fast path,
// whose geometric exponent structure a generic multi-exp cannot
// exploit).
func VerifyPartial(gr *group.Group, keyV, nonceV *commit.Vector, message []byte, p PartialSig) bool {
	if p.Sigma == nil || !gr.IsScalar(p.Sigma) {
		return false
	}
	c := challenge(gr, nonceV.PublicKey(), keyV.PublicKey(), message)
	acc := gr.VarTimeMultiExp(
		[]group.Element{gr.Generator(), nonceV.Eval(int64(p.Signer)), keyV.Eval(int64(p.Signer))},
		[]*big.Int{gr.NegQ(p.Sigma), big.NewInt(1), c},
	)
	return acc.Equal(gr.Identity())
}

// BatchVerifyPartials verifies many partial signatures on one message
// together, returning one verdict per input (identical to per-item
// VerifyPartial verdicts). The partials σ_i are evaluations of the
// degree-t polynomial k(x) + c·s(x), whose coefficient commitments
// are W_ℓ = Vk_ℓ·V_ℓ^c — so, as in batched share verification, the
// batch interpolates a candidate polynomial P from t+1 claimed
// partials, classifies the rest by scalar evaluation, and checks P
// against the commitments with one randomized linear combination:
//
//	g^{Σ r_ℓ P_ℓ} = Π_ℓ Vk_ℓ^{r_ℓ} · Π_ℓ V_ℓ^{c·r_ℓ}
//
// one multi-exp whose cost does not grow with the number of partials.
// A failed combination (forgery probability ≤ 2^−BatchSoundnessBits)
// falls back to per-item verification, so invalid signers are still
// individually identified.
func BatchVerifyPartials(gr *group.Group, keyV, nonceV *commit.Vector, message []byte, partials []PartialSig) []bool {
	valid := make([]bool, len(partials))
	t := keyV.T()
	if nonceV.T() != t {
		return valid // dimension mismatch: nothing can verify
	}
	fallback := func() []bool {
		for i, p := range partials {
			valid[i] = VerifyPartial(gr, keyV, nonceV, message, p)
		}
		return valid
	}
	first := make(map[msg.NodeID]*big.Int, len(partials))
	var pts []poly.Point
	for _, p := range partials {
		if p.Sigma == nil || !gr.IsScalar(p.Sigma) || p.Signer <= 0 {
			continue
		}
		if _, dup := first[p.Signer]; dup {
			continue
		}
		first[p.Signer] = p.Sigma
		if len(pts) <= t {
			pts = append(pts, poly.Point{X: int64(p.Signer), Y: p.Sigma})
		}
	}
	if len(pts) <= t {
		return fallback()
	}
	p, err := poly.InterpolatePoly(gr.Q(), pts)
	if err != nil {
		return fallback()
	}
	blind, err := commit.RandBlinders(t + 1)
	if err != nil {
		return fallback()
	}
	c := challenge(gr, nonceV.PublicKey(), keyV.PublicKey(), message)
	// The challenge factors out of the key-commitment terms:
	//
	//	g^{−Σ r_ℓ P_ℓ} · Π Vk_ℓ^{r_ℓ} · (Π V_ℓ^{r_ℓ})^c = 1
	//
	// so the whole batch pays a single full-width exponentiation (of
	// the collapsed key term) while every blinded exponent stays at
	// BatchSoundnessBits — t+1 short terms per commitment vector
	// instead of t+1 full-width ones.
	bases := make([]group.Element, 0, t+2)
	exps := make([]*big.Int, 0, t+2)
	gExp := new(big.Int)
	keyBases := make([]group.Element, 0, t+1)
	for l := 0; l <= t; l++ {
		gExp.Add(gExp, new(big.Int).Mul(blind[l], p.Coeff(l)))
		bases = append(bases, nonceV.Entry(l))
		exps = append(exps, blind[l])
		keyBases = append(keyBases, keyV.Entry(l))
	}
	bases = append(bases, gr.Generator())
	exps = append(exps, gr.NegQ(gExp))
	nonceSide := gr.VarTimeMultiExp(bases, exps)
	keySide := gr.VarTimeMultiExp(keyBases, blind)
	if !gr.Mul(nonceSide, gr.Exp(keySide, c)).Equal(gr.Identity()) {
		return fallback()
	}
	// P is the committed partial-signature polynomial; classify every
	// input by scalar evaluation — including out-of-protocol signer
	// indices (≤ 0), for which the evaluation is still exactly
	// VerifyPartial's predicate, so batch and per-item verdicts agree
	// on every input.
	evalMemo := make(map[msg.NodeID]*big.Int, len(first))
	for i, pr := range partials {
		if pr.Sigma == nil || !gr.IsScalar(pr.Sigma) {
			continue
		}
		v, ok := evalMemo[pr.Signer]
		if !ok {
			v = p.EvalInt(int64(pr.Signer))
			evalMemo[pr.Signer] = v
		}
		valid[i] = v.Cmp(pr.Sigma) == 0
	}
	return valid
}

// Combine verifies the partials (batched: one multi-exp for the whole
// set, with per-item fallback on batch failure) and interpolates the
// first t+1 valid ones into a full signature.
func Combine(gr *group.Group, keyV, nonceV *commit.Vector, t int, message []byte, partials []PartialSig) (Signature, error) {
	valid := BatchVerifyPartials(gr, keyV, nonceV, message, partials)
	pts := make([]poly.Point, 0, t+1)
	seen := make(map[msg.NodeID]bool, len(partials))
	var bad []msg.NodeID
	badSeen := make(map[msg.NodeID]bool)
	for i, p := range partials {
		if !valid[i] {
			if !badSeen[p.Signer] {
				badSeen[p.Signer] = true
				bad = append(bad, p.Signer)
			}
			continue
		}
		if seen[p.Signer] {
			continue
		}
		seen[p.Signer] = true
		if len(pts) <= t {
			pts = append(pts, poly.Point{X: int64(p.Signer), Y: p.Sigma})
		}
	}
	if len(pts) < t+1 {
		return Signature{}, &PartialsError{Bad: bad, Valid: len(pts), Needed: t + 1}
	}
	sigma, err := poly.Interpolate(gr.Q(), pts, 0)
	if err != nil {
		return Signature{}, err
	}
	sig := Signature{R: nonceV.PublicKey(), Sigma: sigma}
	if !Verify(gr, keyV.PublicKey(), message, sig) {
		return Signature{}, fmt.Errorf("%w: combined signature invalid", ErrBadPartial)
	}
	return sig, nil
}

// CombineUnchecked interpolates the first t+1 distinct partials into
// a signature WITHOUT verifying them. This is the optimistic
// data-plane path: when all share holders are expected honest, the
// caller skips per-partial verification, checks the combined
// signature (individually via Verify or across requests via
// BatchVerifySignatures), and only on failure falls back to Combine,
// whose PartialsError identifies the bad senders.
func CombineUnchecked(gr *group.Group, nonceV *commit.Vector, t int, partials []PartialSig) (Signature, error) {
	return CombineUncheckedWith(gr, nonceV, t, partials, nil)
}

// CombineUncheckedWith is CombineUnchecked with a caller-held
// Lagrange coefficient cache (at 0, over the group's scalar field).
// Aggregators combine against a small repeating set of responder
// subsets, so the cache removes the per-combine modular inversion
// from the steady state. A nil cache falls back to direct
// interpolation.
func CombineUncheckedWith(gr *group.Group, nonceV *commit.Vector, t int, partials []PartialSig, cache *poly.LagrangeCache) (Signature, error) {
	pts := make([]poly.Point, 0, t+1)
	seen := make(map[msg.NodeID]bool, t+1)
	for _, p := range partials {
		if p.Sigma == nil || !gr.IsScalar(p.Sigma) || p.Signer <= 0 || seen[p.Signer] {
			continue
		}
		seen[p.Signer] = true
		pts = append(pts, poly.Point{X: int64(p.Signer), Y: p.Sigma})
		if len(pts) == t+1 {
			break
		}
	}
	if len(pts) < t+1 {
		return Signature{}, &PartialsError{Valid: len(pts), Needed: t + 1}
	}
	var (
		sigma *big.Int
		err   error
	)
	if cache != nil {
		indices := make([]int64, len(pts))
		for i, pt := range pts {
			indices[i] = pt.X
		}
		var lambda []*big.Int
		lambda, err = cache.Coeffs(indices)
		if err == nil {
			acc := new(big.Int)
			for i, pt := range pts {
				acc.Add(acc, new(big.Int).Mul(lambda[i], pt.Y))
			}
			sigma = acc.Mod(acc, gr.Q())
		}
	} else {
		sigma, err = poly.Interpolate(gr.Q(), pts, 0)
	}
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: nonceV.PublicKey(), Sigma: sigma}, nil
}

// BatchVerifySignatures verifies many combined signatures under one
// public key with a single randomized linear combination:
//
//	Π R_j^{r_j} · pk^{Σ r_j c_j} · g^{−Σ r_j σ_j} = 1
//
// — one multi-exp where the R-side exponents all stay at
// BatchSoundnessBits and the two collapsed full-width terms (pk and
// the generator) ride the backend's precomputed tables, against 2·B
// full-width exponentiations for B per-item Verify
// calls. A false return means at least one signature is invalid
// (forgery probability ≤ 2^−BatchSoundnessBits); callers identify it
// by per-item Verify.
func BatchVerifySignatures(gr *group.Group, pk group.Element, messages [][]byte, sigs []Signature) bool {
	return BatchVerifySignaturesPre(gr, pk, messages, nil, sigs)
}

// BatchVerifySignaturesPre is BatchVerifySignatures with optionally
// precomputed challenges: cs[j], when non-nil, must equal
// H(R_j ‖ pk ‖ m_j) for the corresponding signature. An aggregator
// computes every challenge once to generate its own partial and can
// hand the values here instead of paying the hash (and the point
// serializations feeding it) a second time. Nil cs, or a nil entry,
// falls back to recomputation; a wrong precomputed challenge makes
// verification fail, never falsely pass, since the signature was
// produced against the honestly computed value.
func BatchVerifySignaturesPre(gr *group.Group, pk group.Element, messages [][]byte, cs []*big.Int, sigs []Signature) bool {
	if len(messages) != len(sigs) || (cs != nil && len(cs) != len(sigs)) {
		return false
	}
	if len(sigs) == 0 {
		return true
	}
	chal := func(j int) *big.Int {
		if cs != nil && cs[j] != nil {
			return cs[j]
		}
		return challenge(gr, sigs[j].R, pk, messages[j])
	}
	if len(sigs) == 1 {
		sg := sigs[0]
		if sg.R == nil || sg.Sigma == nil || !gr.IsElement(sg.R) || !gr.IsScalar(sg.Sigma) {
			return false
		}
		lhs := gr.GExp(sg.Sigma)
		rhs := gr.Mul(sg.R, gr.Exp(pk, chal(0)))
		return lhs.Equal(rhs)
	}
	blind, err := commit.RandBlinders(len(sigs))
	if err != nil {
		return false
	}
	sAcc := new(big.Int)
	cAcc := new(big.Int)
	bases := make([]group.Element, 0, len(sigs)+2)
	exps := make([]*big.Int, 0, len(sigs)+2)
	for j, sg := range sigs {
		if sg.R == nil || sg.Sigma == nil || !gr.IsElement(sg.R) || !gr.IsScalar(sg.Sigma) {
			return false
		}
		sAcc.Add(sAcc, new(big.Int).Mul(blind[j], sg.Sigma))
		cAcc.Add(cAcc, new(big.Int).Mul(blind[j], chal(j)))
		bases = append(bases, sg.R)
		exps = append(exps, blind[j])
	}
	// One identity check: Π R_j^{r_j} · pk^{Σ r_j c_j} · g^{−Σ r_j σ_j}
	// = 1. Folding the pk and generator terms into the same multi-exp
	// lets a Precompute'd pk ride the shared doubling chain instead of
	// paying a standalone full-width exponentiation per batch.
	bases = append(bases, pk, gr.Generator())
	exps = append(exps, gr.ModQ(cAcc), gr.NegQ(sAcc))
	return gr.VarTimeMultiExp(bases, exps).Equal(gr.Identity())
}

// Verify checks a combined signature exactly like a single-party
// Schnorr verifier: g^σ = R · pk^c with c = H(R ‖ pk ‖ m).
func Verify(gr *group.Group, pk group.Element, message []byte, sig Signature) bool {
	if sig.R == nil || sig.Sigma == nil {
		return false
	}
	if !gr.IsElement(sig.R) || !gr.IsScalar(sig.Sigma) {
		return false
	}
	c := challenge(gr, sig.R, pk, message)
	lhs := gr.GExp(sig.Sigma)
	rhs := gr.Mul(sig.R, gr.Exp(pk, c))
	return lhs.Equal(rhs)
}

package thresh

import (
	"fmt"
	"io"
	"math/big"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
)

// Ciphertext is an ElGamal ciphertext (c1, c2) = (g^r, m·pk^r) over
// group elements.
type Ciphertext struct {
	C1, C2 group.Element
}

// Encrypt encrypts a group element under the shared public key.
// Callers encrypting arbitrary bytes should map them into the group
// first (e.g. hybrid encryption with a KEM around a random element).
func Encrypt(gr *group.Group, pk, m group.Element, rand io.Reader) (Ciphertext, error) {
	if !gr.IsElement(pk) || !gr.IsElement(m) {
		return Ciphertext{}, fmt.Errorf("%w: inputs not group elements", ErrBadArguments)
	}
	r, err := gr.RandNonZeroScalar(rand)
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{
		C1: gr.GExp(r),
		C2: gr.Mul(m, gr.Exp(pk, r)),
	}, nil
}

// DLEQProof is a Chaum–Pedersen proof that log_g(Y) = log_{C1}(D):
// the partial decryption D = C1^{s_i} was produced with the same
// scalar as the public share Y = g^{s_i}.
type DLEQProof struct {
	E, Z *big.Int
}

// PartialDecryption is one node's decryption share with its proof of
// correctness.
type PartialDecryption struct {
	Decryptor msg.NodeID
	D         group.Element
	Proof     DLEQProof
}

// PartialDecrypt produces node i's decryption share D = C1^{s_i}
// along with a DLEQ proof binding it to the share commitment.
func PartialDecrypt(gr *group.Group, key KeyShare, ct Ciphertext, rand io.Reader) (PartialDecryption, error) {
	if err := key.Validate(); err != nil {
		return PartialDecryption{}, err
	}
	if !gr.IsElement(ct.C1) {
		return PartialDecryption{}, ErrBadCipher
	}
	d := gr.Exp(ct.C1, key.Share)
	w, err := gr.RandNonZeroScalar(rand)
	if err != nil {
		return PartialDecryption{}, err
	}
	a1 := gr.GExp(w)
	a2 := gr.Exp(ct.C1, w)
	y := key.V.Eval(int64(key.Self))
	e := gr.HashToScalar("hybriddkg/thresh-dleq/v1",
		y.Bytes(), ct.C1.Bytes(), d.Bytes(), a1.Bytes(), a2.Bytes())
	z := gr.AddQ(w, gr.MulQ(e, key.Share))
	return PartialDecryption{
		Decryptor: key.Self,
		D:         d,
		Proof:     DLEQProof{E: e, Z: z},
	}, nil
}

// VerifyPartialDecryption checks the DLEQ proof: with Y = V(i),
// a1 = g^z·Y^{−e} and a2 = C1^z·D^{−e} must hash back to e.
func VerifyPartialDecryption(gr *group.Group, v *commit.Vector, ct Ciphertext, pd PartialDecryption) bool {
	if pd.D == nil || pd.Proof.E == nil || pd.Proof.Z == nil {
		return false
	}
	if !gr.IsElement(pd.D) || !gr.IsScalar(pd.Proof.E) || !gr.IsScalar(pd.Proof.Z) {
		return false
	}
	y := v.Eval(int64(pd.Decryptor))
	yInvE, err := gr.Inv(gr.Exp(y, pd.Proof.E))
	if err != nil {
		return false
	}
	dInvE, err := gr.Inv(gr.Exp(pd.D, pd.Proof.E))
	if err != nil {
		return false
	}
	a1 := gr.Mul(gr.GExp(pd.Proof.Z), yInvE)
	a2 := gr.Mul(gr.Exp(ct.C1, pd.Proof.Z), dInvE)
	e := gr.HashToScalar("hybriddkg/thresh-dleq/v1",
		y.Bytes(), ct.C1.Bytes(), pd.D.Bytes(), a1.Bytes(), a2.Bytes())
	return e.Cmp(pd.Proof.E) == 0
}

// CombineDecrypt verifies partial decryptions and combines t+1 of
// them in the exponent: C1^s = Π D_i^{λ_i}, then m = C2 / C1^s.
func CombineDecrypt(gr *group.Group, v *commit.Vector, t int, ct Ciphertext, parts []PartialDecryption) (group.Element, error) {
	if !gr.IsElement(ct.C1) || !gr.IsElement(ct.C2) {
		return nil, ErrBadCipher
	}
	valid := make([]PartialDecryption, 0, t+1)
	seen := make(map[msg.NodeID]bool, len(parts))
	var bad []msg.NodeID
	badSeen := make(map[msg.NodeID]bool)
	for _, pd := range parts {
		if seen[pd.Decryptor] {
			continue
		}
		if !VerifyPartialDecryption(gr, v, ct, pd) {
			if !badSeen[pd.Decryptor] {
				badSeen[pd.Decryptor] = true
				bad = append(bad, pd.Decryptor)
			}
			continue
		}
		seen[pd.Decryptor] = true
		if len(valid) <= t {
			valid = append(valid, pd)
		}
	}
	if len(valid) < t+1 {
		return nil, &PartialsError{Bad: bad, Valid: len(valid), Needed: t + 1}
	}
	indices := make([]int64, len(valid))
	for i, pd := range valid {
		indices[i] = int64(pd.Decryptor)
	}
	lambdas, err := poly.LagrangeCoeffsAt(gr.Q(), indices, 0)
	if err != nil {
		return nil, err
	}
	acc := gr.Identity()
	for i, pd := range valid {
		acc = gr.Mul(acc, gr.Exp(pd.D, lambdas[i]))
	}
	return gr.Div(ct.C2, acc)
}

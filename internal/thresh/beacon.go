package thresh

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"

	"hybriddkg/internal/group"
)

// BeaconOutput derives the round's public random value from a
// reconstructed DKG secret. The beacon pattern (§1's distributed
// coin-tossing motivation) is: each round runs a fresh DKG, the nodes
// then run Rec to open the secret, and everyone hashes the opening.
// No participant knows the secret before the opening quorum forms, so
// the output is unpredictable; Feldman-based DKG admits the classical
// Gennaro et al. bias caveat (the adversary may bias a few bits by
// aborting), which is acceptable for the lottery/beacon use cases the
// paper cites and is documented in EXPERIMENTS.md.
func BeaconOutput(gr *group.Group, round uint64, opened *big.Int) [32]byte {
	h := sha256.New()
	h.Write([]byte("hybriddkg/beacon/v1"))
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], round)
	h.Write(rb[:])
	h.Write(gr.ParamsID())
	h.Write(opened.Bytes())
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// BeaconBit reduces a beacon output to a single unbiased-looking coin
// (the distributed coin-tossing primitive of §1).
func BeaconBit(out [32]byte) bool { return out[0]&1 == 1 }

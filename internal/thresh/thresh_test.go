package thresh_test

import (
	"errors"
	"math/big"
	"testing"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/thresh"
)

// dealKey fabricates a shared key directly from a polynomial (unit
// tests); integration tests below use real DKG output instead.
func dealKey(t *testing.T, gr *group.Group, deg int, seed uint64) (map[msg.NodeID]thresh.KeyShare, *commit.Vector) {
	t.Helper()
	p, err := poly.NewRandom(gr.Q(), deg, randutil.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	v := commit.NewVector(gr, p)
	shares := make(map[msg.NodeID]thresh.KeyShare, 7)
	for i := msg.NodeID(1); i <= 7; i++ {
		shares[i] = thresh.KeyShare{Self: i, Share: p.EvalInt(int64(i)), V: v}
	}
	return shares, v
}

func TestThresholdSchnorrEndToEnd(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 1)
	nonces, nonceV := dealKey(t, gr, tt, 2)
	message := []byte("threshold-signed certificate")

	partials := make([]thresh.PartialSig, 0, 7)
	for i := msg.NodeID(1); i <= 7; i++ {
		p, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
		if err != nil {
			t.Fatal(err)
		}
		if !thresh.VerifyPartial(gr, keyV, nonceV, message, p) {
			t.Fatalf("honest partial %d rejected", i)
		}
		partials = append(partials, p)
	}
	sig, err := thresh.Combine(gr, keyV, nonceV, tt, message, partials)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(gr, keyV.PublicKey(), message, sig) {
		t.Fatal("combined signature invalid")
	}
	if thresh.Verify(gr, keyV.PublicKey(), []byte("other"), sig) {
		t.Fatal("signature verified for wrong message")
	}
}

func TestSchnorrPartialRejection(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 3)
	nonces, nonceV := dealKey(t, gr, tt, 4)
	message := []byte("m")

	good, err := thresh.PartialSign(gr, keys[1], nonces[1], message)
	if err != nil {
		t.Fatal(err)
	}
	bad := thresh.PartialSig{Signer: 1, Sigma: gr.AddQ(good.Sigma, big.NewInt(1))}
	if thresh.VerifyPartial(gr, keyV, nonceV, message, bad) {
		t.Fatal("tampered partial accepted")
	}
	if thresh.VerifyPartial(gr, keyV, nonceV, message, thresh.PartialSig{Signer: 1}) {
		t.Fatal("nil partial accepted")
	}
	// Combine with t tampered partials and t+1 good ones: still works.
	partials := []thresh.PartialSig{bad}
	for i := msg.NodeID(2); i <= 7; i++ {
		p, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	if _, err := thresh.Combine(gr, keyV, nonceV, tt, message, partials); err != nil {
		t.Fatalf("combine with mixed partials: %v", err)
	}
	// Not enough valid partials fails.
	if _, err := thresh.Combine(gr, keyV, nonceV, tt, message, partials[:2]); err == nil {
		t.Fatal("combine with too few partials succeeded")
	}
}

func TestPartialSignGuards(t *testing.T) {
	gr := group.Test256()
	keys, _ := dealKey(t, gr, 2, 5)
	nonces, _ := dealKey(t, gr, 2, 6)
	// Mismatched signers.
	if _, err := thresh.PartialSign(gr, keys[1], nonces[2], []byte("m")); err == nil {
		t.Fatal("signer mismatch accepted")
	}
	// Corrupt key share.
	badKey := thresh.KeyShare{Self: 1, Share: big.NewInt(1), V: keys[1].V}
	if _, err := thresh.PartialSign(gr, badKey, nonces[1], []byte("m")); err == nil {
		t.Fatal("invalid key share accepted")
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	gr := group.Test256()
	_, keyV := dealKey(t, gr, 2, 7)
	if thresh.Verify(gr, keyV.PublicKey(), []byte("m"), thresh.Signature{}) {
		t.Fatal("empty signature verified")
	}
	if thresh.Verify(gr, keyV.PublicKey(), []byte("m"), thresh.Signature{R: group.P256().Generator(), Sigma: big.NewInt(1)}) {
		t.Fatal("foreign-backend R verified")
	}
}

func TestElGamalEndToEnd(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 8)
	r := randutil.NewReader(9)
	// Message: random group element.
	x, err := gr.RandScalar(r)
	if err != nil {
		t.Fatal(err)
	}
	m := gr.GExp(x)
	ct, err := thresh.Encrypt(gr, keyV.PublicKey(), m, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]thresh.PartialDecryption, 0, 7)
	for i := msg.NodeID(1); i <= 7; i++ {
		pd, err := thresh.PartialDecrypt(gr, keys[i], ct, r)
		if err != nil {
			t.Fatal(err)
		}
		if !thresh.VerifyPartialDecryption(gr, keyV, ct, pd) {
			t.Fatalf("honest partial decryption %d rejected", i)
		}
		parts = append(parts, pd)
	}
	got, err := thresh.CombineDecrypt(gr, keyV, tt, ct, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption mismatch")
	}
}

func TestElGamalRejectsForgedPartials(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 10)
	r := randutil.NewReader(11)
	m := gr.GExp(big.NewInt(424242))
	ct, err := thresh.Encrypt(gr, keyV.PublicKey(), m, r)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := thresh.PartialDecrypt(gr, keys[1], ct, r)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with D but keep the proof: must be rejected.
	forged := pd
	forged.D = gr.Mul(pd.D, gr.Generator())
	if thresh.VerifyPartialDecryption(gr, keyV, ct, forged) {
		t.Fatal("forged decryption share accepted")
	}
	// Proof from a different ciphertext: rejected.
	ct2, err := thresh.Encrypt(gr, keyV.PublicKey(), m, r)
	if err != nil {
		t.Fatal(err)
	}
	if thresh.VerifyPartialDecryption(gr, keyV, ct2, pd) {
		t.Fatal("replayed proof accepted for different ciphertext")
	}
	// Too few honest partials.
	if _, err := thresh.CombineDecrypt(gr, keyV, tt, ct, []thresh.PartialDecryption{pd}); err == nil {
		t.Fatal("combine with one partial succeeded")
	}
}

func TestEncryptRejectsNonElements(t *testing.T) {
	gr := group.Test256()
	r := randutil.NewReader(12)
	if _, err := thresh.Encrypt(gr, nil, gr.Generator(), r); err == nil {
		t.Fatal("nil pk accepted")
	}
	if _, err := thresh.Encrypt(gr, group.P256().Generator(), gr.Generator(), r); err == nil {
		t.Fatal("foreign-backend pk accepted")
	}
	if _, err := thresh.Encrypt(gr, gr.Generator(), nil, r); err == nil {
		t.Fatal("nil message accepted")
	}
}

// TestSchnorrOverRealDKG wires the whole stack: two DKG runs (key +
// nonce) on the simulated network, then threshold signing with the
// produced shares.
func TestSchnorrOverRealDKG(t *testing.T) {
	gr := group.Test256()
	const n, tt = 7, 2
	keyRun, err := harness.RunDKG(harness.DKGOptions{N: n, T: tt, Seed: 13, Group: gr})
	if err != nil {
		t.Fatal(err)
	}
	nonceRun, err := harness.RunDKG(harness.DKGOptions{N: n, T: tt, Seed: 14, Group: gr})
	if err != nil {
		t.Fatal(err)
	}
	if keyRun.HonestDone() != n || nonceRun.HonestDone() != n {
		t.Fatal("DKG incomplete")
	}
	keyV := keyRun.Completed[1].V
	nonceV := nonceRun.Completed[1].V
	message := []byte("signed by a dealerless quorum")
	partials := make([]thresh.PartialSig, 0, tt+1)
	for i := msg.NodeID(1); i <= tt+1; i++ {
		key := thresh.KeyShare{Self: i, Share: keyRun.Completed[i].Share, V: keyV}
		nonce := thresh.KeyShare{Self: i, Share: nonceRun.Completed[i].Share, V: nonceV}
		p, err := thresh.PartialSign(gr, key, nonce, message)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	sig, err := thresh.Combine(gr, keyV, nonceV, tt, message, partials)
	if err != nil {
		t.Fatal(err)
	}
	if !thresh.Verify(gr, keyV.PublicKey(), message, sig) {
		t.Fatal("signature over real DKG output invalid")
	}
}

func TestBeaconOutput(t *testing.T) {
	gr := group.Test256()
	a := thresh.BeaconOutput(gr, 1, big.NewInt(777))
	b := thresh.BeaconOutput(gr, 1, big.NewInt(777))
	if a != b {
		t.Fatal("beacon not deterministic")
	}
	c := thresh.BeaconOutput(gr, 2, big.NewInt(777))
	if a == c {
		t.Fatal("round not bound")
	}
	d := thresh.BeaconOutput(gr, 1, big.NewInt(778))
	if a == d {
		t.Fatal("opening not bound")
	}
	// BeaconBit is a function of the output.
	_ = thresh.BeaconBit(a)
}

func TestCombineReportsBadSigners(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 21)
	nonces, nonceV := dealKey(t, gr, tt, 22)
	message := []byte("m")

	// Two good partials (t+1 = 3 needed) plus two tampered ones: the
	// combine must fail and name exactly the tampered signers.
	var partials []thresh.PartialSig
	for i := msg.NodeID(1); i <= 2; i++ {
		p, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	for i := msg.NodeID(3); i <= 4; i++ {
		p, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
		if err != nil {
			t.Fatal(err)
		}
		p.Sigma = gr.AddQ(p.Sigma, big.NewInt(1))
		partials = append(partials, p)
	}
	_, err := thresh.Combine(gr, keyV, nonceV, tt, message, partials)
	if err == nil {
		t.Fatal("combine succeeded with too few valid partials")
	}
	if !errors.Is(err, thresh.ErrNotEnough) {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
	var pe *thresh.PartialsError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *thresh.PartialsError", err)
	}
	if len(pe.Bad) != 2 || pe.Bad[0] != 3 || pe.Bad[1] != 4 {
		t.Fatalf("Bad = %v, want [3 4]", pe.Bad)
	}
	if pe.Valid != 2 || pe.Needed != tt+1 {
		t.Fatalf("Valid/Needed = %d/%d, want 2/3", pe.Valid, pe.Needed)
	}
}

func TestCombineDecryptReportsBadDecryptors(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 23)
	rng := randutil.NewReader(24)
	m := gr.GExp(big.NewInt(777))
	ct, err := thresh.Encrypt(gr, keyV.PublicKey(), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	var parts []thresh.PartialDecryption
	for i := msg.NodeID(1); i <= 2; i++ {
		pd, err := thresh.PartialDecrypt(gr, keys[i], ct, rng)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, pd)
	}
	pd, err := thresh.PartialDecrypt(gr, keys[5], ct, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd.D = gr.Mul(pd.D, gr.Generator()) // breaks the DLEQ proof
	parts = append(parts, pd)
	_, err = thresh.CombineDecrypt(gr, keyV, tt, ct, parts)
	var pe *thresh.PartialsError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *thresh.PartialsError", err, err)
	}
	if len(pe.Bad) != 1 || pe.Bad[0] != 5 {
		t.Fatalf("Bad = %v, want [5]", pe.Bad)
	}
}

func TestPartialSignPreMatchesPartialSign(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 25)
	nonces, nonceV := dealKey(t, gr, tt, 26)
	message := []byte("hot path")
	c := thresh.Challenge(gr, nonceV.PublicKey(), keyV.PublicKey(), message)
	for i := msg.NodeID(1); i <= 7; i++ {
		slow, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
		if err != nil {
			t.Fatal(err)
		}
		fast := thresh.PartialSignPre(gr, i, keys[i].Share, nonces[i].Share, c)
		if fast.Signer != slow.Signer || fast.Sigma.Cmp(slow.Sigma) != 0 {
			t.Fatalf("node %d: PartialSignPre diverges from PartialSign", i)
		}
	}
}

func TestCombineUncheckedAndBatchVerifySignatures(t *testing.T) {
	gr := group.Test256()
	const tt = 2
	keys, keyV := dealKey(t, gr, tt, 27)

	var msgs [][]byte
	var sigs []thresh.Signature
	for j := 0; j < 4; j++ {
		nonces, nonceV := dealKey(t, gr, tt, 30+uint64(j))
		message := []byte{byte('a' + j)}
		var partials []thresh.PartialSig
		for i := msg.NodeID(1); i <= msg.NodeID(tt+1); i++ {
			p, err := thresh.PartialSign(gr, keys[i], nonces[i], message)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
		sig, err := thresh.CombineUnchecked(gr, nonceV, tt, partials)
		if err != nil {
			t.Fatal(err)
		}
		if !thresh.Verify(gr, keyV.PublicKey(), message, sig) {
			t.Fatalf("optimistic combine %d produced invalid signature", j)
		}
		msgs = append(msgs, message)
		sigs = append(sigs, sig)
	}
	if !thresh.BatchVerifySignatures(gr, keyV.PublicKey(), msgs, sigs) {
		t.Fatal("batch rejected all-valid signatures")
	}
	// One corrupted signature must fail the whole batch.
	bad := make([]thresh.Signature, len(sigs))
	copy(bad, sigs)
	bad[2] = thresh.Signature{R: bad[2].R, Sigma: gr.AddQ(bad[2].Sigma, big.NewInt(1))}
	if thresh.BatchVerifySignatures(gr, keyV.PublicKey(), msgs, bad) {
		t.Fatal("batch accepted a corrupted signature")
	}
	// Too few partials: typed error, no bad senders.
	_, err := thresh.CombineUnchecked(gr, keyV, tt, nil)
	var pe *thresh.PartialsError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *thresh.PartialsError", err)
	}
}

// Package store is the per-node durable state subsystem: an
// append-only write-ahead log of delivered envelopes plus an
// atomically replaced snapshot, per protocol session. It is what turns
// the paper's crash-recovery model (§3: nodes come back "with their
// state intact") into something that holds across OS process
// lifetimes — without it, recovery only works while the process lives.
//
// Layout under the state directory, one pair of files per session:
//
//	sess-<id>.wal   append-only frame log (CRC-framed records)
//	sess-<id>.snap  latest snapshot (atomic tmp+rename replace)
//
// The WAL is written ahead of dispatch: a frame is journaled before
// the protocol state machine sees it, so a crash between journaling
// and dispatch merely replays a frame the (idempotent, first-time
// guarded) state machine never processed. Records carry a per-session
// sequence number and a CRC32C; on reopen the log is scanned and
// truncated at the first corrupt or torn record, the standard WAL
// tail-tolerance contract. A snapshot records the WAL sequence it
// covers, so recovery is load-snapshot + replay-tail.
//
// Fsync policy (documented in DESIGN.md "Durability model"): WAL
// appends are synced every Options.SyncEvery records (default 1 —
// every append; negative disables append fsync); snapshots and Sync()
// always fsync. Process kills (SIGKILL) never lose page-cache writes,
// so even with append fsync disabled the kill-and-restart scenarios
// survive; the fsync policy matters for machine crashes.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybriddkg/internal/msg"
	"hybriddkg/internal/telemetry"
)

// Errors returned by the store.
var (
	ErrClosed      = errors.New("store: closed")
	ErrBadSnapshot = errors.New("store: corrupt snapshot")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	walPrefix  = "sess-"
	walSuffix  = ".wal"
	snapSuffix = ".snap"

	// walHeader is the fixed part of a record: u32 payload length plus
	// u32 CRC32C of the payload. The payload is u64 seq ‖ envelope.
	walHeader = 8
	// walMaxRecord bounds a single record, mirroring the transport's
	// frame cap so a corrupt length cannot force a giant allocation.
	walMaxRecord = 64 << 20

	snapMagic = "HDKGSNP1"
)

// Options configures a Store.
type Options struct {
	// SyncEvery is the WAL fsync cadence: the log is fsynced on every
	// SyncEvery-th append. The zero value defaults to 1 — fsync every
	// append. A negative value disables explicit append fsync (page
	// cache only — survives process kills but not power loss).
	SyncEvery int
	// Metrics, when set, receives WAL append counts, fsync latency
	// and snapshot-duration observations.
	Metrics *telemetry.StoreMetrics
}

// Store is one node's durable state directory.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	logs   map[msg.SessionID]*sessionLog
	closed bool
}

// sessionLog is the open write handle for one session's WAL.
type sessionLog struct {
	f         *os.File
	seq       uint64 // last appended sequence number
	size      int64  // validated length of the log
	sinceSync int
	// broken marks a log whose offset could not be rolled back after
	// a partial write; further appends would land after torn bytes
	// and be unreachable on replay, so they are refused instead.
	broken bool
}

// Open creates (or reopens) a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SyncEvery == 0 {
		opts.SyncEvery = 1
	}
	if opts.Metrics == nil {
		opts.Metrics = &telemetry.StoreMetrics{}
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &Store{dir: dir, opts: opts, logs: make(map[msg.SessionID]*sessionLog)}, nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) walPath(sid msg.SessionID) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d%s", walPrefix, uint64(sid), walSuffix))
}

func (s *Store) snapPath(sid msg.SessionID) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d%s", walPrefix, uint64(sid), snapSuffix))
}

// log returns (opening and scanning if needed) the session's WAL
// handle. Called with s.mu held.
func (s *Store) logLocked(sid msg.SessionID) (*sessionLog, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if sl, ok := s.logs[sid]; ok {
		return sl, nil
	}
	f, err := os.OpenFile(s.walPath(sid), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %v: %w", sid, err)
	}
	seq, size, err := scanWAL(f, 0, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any corrupt or torn tail so new records append after the
	// last valid one instead of interleaving with garbage.
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate wal %v: %w", sid, err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek wal %v: %w", sid, err)
	}
	sl := &sessionLog{f: f, seq: seq, size: size}
	s.logs[sid] = sl
	return sl, nil
}

// scanWAL walks the log from the start, validating records. It calls
// fn (when non-nil) for every record with sequence number > afterSeq
// and returns the last valid sequence number and the validated byte
// length. Scanning stops silently at the first corrupt or torn record.
func scanWAL(f *os.File, afterSeq uint64, fn func(seq uint64, env msg.Envelope) error) (uint64, int64, error) {
	var (
		off    int64
		seq    uint64
		header [walHeader]byte
	)
	for {
		if _, err := f.ReadAt(header[:], off); err != nil {
			return seq, off, nil // clean or torn end: stop here
		}
		length := binary.BigEndian.Uint32(header[0:4])
		if length < 8 || length > walMaxRecord {
			return seq, off, nil
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+walHeader); err != nil {
			return seq, off, nil // torn record
		}
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(header[4:8]) {
			return seq, off, nil // corrupt record
		}
		recSeq := binary.BigEndian.Uint64(payload[:8])
		if recSeq != seq+1 {
			return seq, off, nil // sequence discontinuity: stale tail
		}
		if fn != nil && recSeq > afterSeq {
			env, err := msg.DecodeEnvelope(payload[8:])
			if err != nil {
				return seq, off, nil // structurally corrupt envelope
			}
			if err := fn(recSeq, env); err != nil {
				return seq, off, err
			}
		}
		seq = recSeq
		off += walHeader + int64(length)
	}
}

// AppendFrame journals one delivered envelope, returning after the
// record is written (and, per the sync policy, fsynced). It satisfies
// the engine's write-ahead contract: call before dispatching the frame
// to the protocol state machine.
func (s *Store) AppendFrame(sid msg.SessionID, env msg.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, err := s.logLocked(sid)
	if err != nil {
		return err
	}
	encEnv := msg.EncodeEnvelope(env)
	payload := make([]byte, 0, 8+len(encEnv))
	payload = binary.BigEndian.AppendUint64(payload, sl.seq+1)
	payload = append(payload, encEnv...)
	rec := make([]byte, 0, walHeader+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.Checksum(payload, crcTable))
	rec = append(rec, payload...)
	if sl.broken {
		return fmt.Errorf("store: wal %v broken by an earlier failed append", sid)
	}
	if _, err := sl.f.Write(rec); err != nil {
		// Roll the file back to the last valid record so a later
		// append (after a transient failure like ENOSPC) does not land
		// beyond torn bytes, where replay's tail-truncation would
		// silently discard it.
		if terr := sl.f.Truncate(sl.size); terr == nil {
			_, terr = sl.f.Seek(sl.size, io.SeekStart)
			sl.broken = terr != nil
		} else {
			sl.broken = true
		}
		return fmt.Errorf("store: append wal %v: %w", sid, err)
	}
	sl.seq++
	sl.size += int64(len(rec))
	sl.sinceSync++
	s.opts.Metrics.WALAppends.Inc()
	if s.opts.SyncEvery > 0 && sl.sinceSync >= s.opts.SyncEvery {
		sl.sinceSync = 0
		// The fsync dwarfs the clock reads around it, so the timing is
		// unconditional even with telemetry off.
		t0 := time.Now()
		err := sl.f.Sync()
		s.opts.Metrics.FsyncSeconds.Observe(time.Since(t0))
		if err != nil {
			return fmt.Errorf("store: sync wal %v: %w", sid, err)
		}
	}
	return nil
}

// Seq returns the last journaled sequence number for a session.
func (s *Store) Seq(sid msg.SessionID) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, err := s.logLocked(sid)
	if err != nil {
		return 0, err
	}
	return sl.seq, nil
}

// Replay streams the journaled envelopes with sequence number greater
// than afterSeq, in order. Replay reads through a separate handle, so
// it is safe while the session is still appending (recovery replays
// before new traffic arrives, but nothing breaks if it does not).
func (s *Store) Replay(sid msg.SessionID, afterSeq uint64, fn func(env msg.Envelope) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	path := s.walPath(sid)
	s.mu.Unlock()
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open wal %v for replay: %w", sid, err)
	}
	defer f.Close()
	_, _, err = scanWAL(f, afterSeq, func(_ uint64, env msg.Envelope) error { return fn(env) })
	return err
}

// SaveSnapshot atomically replaces the session's snapshot with state,
// recording the WAL sequence number it covers. The write path is
// tmp + fsync + rename + fsync(dir), so a crash leaves either the old
// snapshot or the new one, never a torn file.
func (s *Store) SaveSnapshot(sid msg.SessionID, state []byte) error {
	s.mu.Lock()
	sl, err := s.logLocked(sid)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	seq := sl.seq
	path := s.snapPath(sid)
	s.mu.Unlock()

	t0 := time.Now()
	defer func() { s.opts.Metrics.SnapSeconds.Observe(time.Since(t0)) }()

	buf := make([]byte, 0, len(snapMagic)+12+len(state)+4)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = append(buf, state...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp %v: %w", sid, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot %v: %w", sid, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync snapshot %v: %w", sid, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: install snapshot %v: %w", sid, err)
	}
	return syncDir(s.dir)
}

// LoadSnapshot returns the session's latest snapshot and the WAL
// sequence number it covers. A missing snapshot returns (nil, 0, nil):
// recovery then replays the whole WAL into a fresh state machine. A
// corrupt snapshot returns ErrBadSnapshot so callers can choose the
// same full-replay fallback explicitly.
func (s *Store) LoadSnapshot(sid msg.SessionID) ([]byte, uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	path := s.snapPath(sid)
	s.mu.Unlock()
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(buf) < len(snapMagic)+16 || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad header", ErrBadSnapshot)
	}
	body, tag := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(tag) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	seq := binary.BigEndian.Uint64(buf[len(snapMagic):])
	stateLen := binary.BigEndian.Uint32(buf[len(snapMagic)+8:])
	state := buf[len(snapMagic)+12 : len(buf)-4]
	if int(stateLen) != len(state) {
		return nil, 0, fmt.Errorf("%w: length mismatch", ErrBadSnapshot)
	}
	return state, seq, nil
}

// Sessions lists every session with durable state, ascending.
func (s *Store) Sessions() ([]msg.SessionID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	dir := s.dir
	s.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[msg.SessionID]bool)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walPrefix) {
			continue
		}
		rest := strings.TrimPrefix(name, walPrefix)
		var idStr string
		switch {
		case strings.HasSuffix(rest, walSuffix):
			idStr = strings.TrimSuffix(rest, walSuffix)
		case strings.HasSuffix(rest, snapSuffix):
			idStr = strings.TrimSuffix(rest, snapSuffix)
		default:
			continue
		}
		v, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			continue
		}
		seen[msg.SessionID(v)] = true
	}
	out := make([]msg.SessionID, 0, len(seen))
	for sid := range seen {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Remove deletes a session's durable state (WAL and snapshot). Used to
// garbage-collect sessions whose results have been consumed.
func (s *Store) Remove(sid msg.SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sl, ok := s.logs[sid]; ok {
		sl.f.Close()
		delete(s.logs, sid)
	}
	var firstErr error
	for _, p := range []string{s.walPath(sid), s.snapPath(sid)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync fsyncs every open WAL — the graceful-shutdown flush.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var firstErr error
	for sid, sl := range s.logs {
		sl.sinceSync = 0
		if err := sl.f.Sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: sync wal %v: %w", sid, err)
		}
	}
	return firstErr
}

// Close syncs and closes every open file. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, sl := range s.logs {
		if err := sl.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sl.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.logs = nil
	return firstErr
}

// syncDir fsyncs a directory so a rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package store

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"hybriddkg/internal/msg"
)

func frame(i int) msg.Envelope {
	return msg.Envelope{
		From:    msg.NodeID(i%4 + 1),
		To:      1,
		Session: 7,
		Type:    msg.TVSSEcho,
		Payload: bytes.Repeat([]byte{byte(i)}, i%13+1),
	}
}

func collect(t *testing.T, s *Store, sid msg.SessionID, after uint64) []msg.Envelope {
	t.Helper()
	var out []msg.Envelope
	if err := s.Replay(sid, after, func(env msg.Envelope) error {
		out = append(out, env)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestWALRoundTrip: append, replay all, replay a tail after a snapshot.
func TestWALRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const sid = msg.SessionID(7)
	for i := 0; i < 20; i++ {
		if err := s.AppendFrame(sid, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, s, sid, 0)
	if len(got) != 20 {
		t.Fatalf("replayed %d frames, want 20", len(got))
	}
	for i, env := range got {
		want := frame(i)
		if env.From != want.From || env.Type != want.Type || !bytes.Equal(env.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v", i, env)
		}
	}

	// Snapshot covers seq 20; replay after it yields only later frames.
	if err := s.SaveSnapshot(sid, []byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		if err := s.AppendFrame(sid, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	state, seq, err := s.LoadSnapshot(sid)
	if err != nil || string(state) != "state-at-20" || seq != 20 {
		t.Fatalf("snapshot: state=%q seq=%d err=%v", state, seq, err)
	}
	if tail := collect(t, s, sid, seq); len(tail) != 5 {
		t.Fatalf("tail: %d frames, want 5", len(tail))
	}
}

// TestReopenContinuesSequence: a reopened store appends after the last
// valid record, and replay sees both generations.
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const sid = msg.SessionID(3)
	for i := 0; i < 10; i++ {
		if err := s.AppendFrame(sid, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if seq, _ := s2.Seq(sid); seq != 10 {
		t.Fatalf("reopened seq %d, want 10", seq)
	}
	for i := 10; i < 15; i++ {
		if err := s2.AppendFrame(sid, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, s2, sid, 0); len(got) != 15 {
		t.Fatalf("replayed %d, want 15", len(got))
	}
}

// TestCorruptTailTruncated: garbage at the end of the WAL is dropped
// on reopen; the valid prefix survives and appends continue cleanly.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const sid = msg.SessionID(9)
	for i := 0; i < 8; i++ {
		if err := s.AppendFrame(sid, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := s.walPath(sid)
	// Case 1: appended garbage.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s2, sid, 0); len(got) != 8 {
		t.Fatalf("after garbage tail: %d frames, want 8", len(got))
	}
	// Appends land after the truncated tail.
	if err := s2.AppendFrame(sid, frame(8)); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s2, sid, 0); len(got) != 9 {
		t.Fatalf("after post-corruption append: %d frames, want 9", len(got))
	}
	s2.Close()

	// Case 2: torn final record (simulated crash mid-write).
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := collect(t, s3, sid, 0); len(got) != 8 {
		t.Fatalf("after torn record: %d frames, want 8", len(got))
	}
}

// TestCorruptSnapshot: a flipped byte is detected; a missing snapshot
// reports cleanly.
func TestCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const sid = msg.SessionID(5)

	if state, seq, err := s.LoadSnapshot(sid); state != nil || seq != 0 || err != nil {
		t.Fatalf("missing snapshot: %v %d %v", state, seq, err)
	}
	if err := s.AppendFrame(sid, frame(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(sid, []byte("good state")); err != nil {
		t.Fatal(err)
	}
	path := s.snapPath(sid)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadSnapshot(sid); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot error: %v", err)
	}
}

// TestSessionsAndRemove: discovery lists journaled sessions; Remove
// deletes their durable state.
func TestSessionsAndRemove(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, sid := range []msg.SessionID{4, 2, 11} {
		if err := s.AppendFrame(sid, frame(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sids, err := s.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) != 3 || sids[0] != 2 || sids[1] != 4 || sids[2] != 11 {
		t.Fatalf("sessions: %v", sids)
	}
	if err := s.Remove(4); err != nil {
		t.Fatal(err)
	}
	sids, err = s.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) != 2 {
		t.Fatalf("sessions after remove: %v", sids)
	}
	// A removed session restarts from sequence 1.
	if err := s.AppendFrame(4, frame(9)); err != nil {
		t.Fatal(err)
	}
	if seq, _ := s.Seq(4); seq != 1 {
		t.Fatalf("seq after remove: %d", seq)
	}
}

package transport_test

import (
	"fmt"
	"testing"

	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/randutil"
)

// TestDecoderRobustness throws random byte strings at every
// registered message decoder: nothing may panic, and errors must be
// returned cleanly. This is the wire-facing attack surface of a real
// deployment (a Byzantine peer controls every payload byte).
func TestDecoderRobustness(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	types := []msg.Type{
		msg.TVSSSend, msg.TVSSEcho, msg.TVSSReady, msg.TVSSHelp, msg.TRecShare,
		msg.TDKGSend, msg.TDKGEcho, msg.TDKGReady, msg.TDKGLeadCh, msg.TDKGHelp,
		msg.TRBCSend, msg.TRBCEcho, msg.TRBCReady,
		msg.TClockTick, msg.TSubshare,
	}
	r := randutil.NewReader(0xfeed)
	for _, typ := range types {
		typ := typ
		t.Run(fmt.Sprint(typ), func(t *testing.T) {
			for trial := 0; trial < 500; trial++ {
				n := r.IntN(256)
				payload := make([]byte, n)
				if _, err := r.Read(payload); err != nil {
					t.Fatal(err)
				}
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							t.Fatalf("decoder for %v panicked on %d random bytes: %v", typ, n, rec)
						}
					}()
					body, err := codec.Decode(typ, payload)
					if err == nil && body != nil {
						// Rare but legal: random bytes formed a valid
						// message. It must re-marshal without panic.
						if _, err := body.MarshalBinary(); err != nil {
							t.Fatalf("accepted message fails to re-marshal: %v", err)
						}
					}
				}()
			}
		})
	}
}

// TestDecoderLengthBombs: length prefixes claiming enormous sizes
// must fail fast without allocating.
func TestDecoderLengthBombs(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	// A VSS send whose commitment blob claims 2^31 bytes.
	w := msg.NewWriter(32)
	w.Node(1)
	w.U64(1)
	w.U32(1 << 31)
	if _, err := codec.Decode(msg.TVSSSend, w.Bytes()); err == nil {
		t.Fatal("length bomb accepted")
	}
	// A DKG proposal claiming 2^20 dealers.
	w2 := msg.NewWriter(32)
	w2.U64(1)
	w2.U64(1)
	w2.U32(1 << 20)
	if _, err := codec.Decode(msg.TDKGSend, w2.Bytes()); err == nil {
		t.Fatal("dealer-count bomb accepted")
	}
}

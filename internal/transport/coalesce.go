// Wire format v2 at the transport layer: batch frames and envelope
// coalescing. A batch frame packs several same-(session, src, dst)
// envelopes under one length prefix and one MAC:
//
//	u32 length ‖ 0x80 ‖ u64 session ‖ u64 from ‖ u64 to ‖ u16 count ‖
//	count × (u8 type ‖ u32 plen ‖ payload) ‖ 32-byte HMAC-SHA256
//
// The MAC covers everything between the length prefix and the tag, so
// envelopes can no more be spliced between batch frames than between
// v1 frames. The 0x80 marker occupies the position of the v1 type
// byte; protocol message types are small constants well below 0x80, so
// the two formats are distinguishable from the first inner byte and
// DecodeFrameMulti accepts both — a coalescing node interoperates with
// a v1-only peer in both directions.
//
// Coalescing is a per-destination flush queue: envelopes accumulate
// until the pending frame reaches the size watermark, the latency
// timer fires, or a send for a different session arrives (one session
// per frame; switching flushes first, preserving per-link FIFO order).
package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"hybriddkg/internal/msg"
)

// batchMarker distinguishes a batch frame from a v1 frame: it sits
// where v1 carries the message type, and no protocol type reaches it.
const batchMarker = 0x80

// batchOverhead is the inner (post-length-prefix) fixed cost of a
// batch frame: marker, session/from/to, envelope count, MAC.
const batchOverhead = 1 + 8 + 8 + 8 + 2 + sha256.Size

// batchEnvOverhead is the per-envelope sub-header: type byte plus u32
// payload length.
const batchEnvOverhead = 1 + 4

// Coalescing watermarks (Config overrides).
const (
	defCoalesceBytes = 16 << 10
	defCoalesceDelay = 500 * time.Microsecond
)

// Retry budget for batch frames that could not be written. A batch
// frame concentrates a burst of protocol state — the dealer's send
// plus the first echoes can share one frame — so dropping it on a
// transient connection failure (a peer whose listener is not up yet,
// the classic cluster-start race) loses far more than a v1
// single-message frame would. Failed frames therefore stay queued and
// are retransmitted with exponential backoff (10ms … 1.28s, ~2.5s
// total) before being dropped; after the budget, semantics degrade to
// the v1 contract (drop, protocol-level help recovers).
const (
	coalesceRetryBase  = 10 * time.Millisecond
	coalesceMaxTries   = 8
	coalesceMaxBacklog = 1 << 20
)

// WireStats are the bytes-on-wire books of one transport node's send
// side. Frame costs (headers, MACs, sub-headers) are attributed to the
// frame counters and per-session totals; per-type counters carry each
// envelope's own bytes (type byte + payload, plus the whole v1 frame
// overhead when each envelope is its own frame).
type WireStats struct {
	// Frames and FrameBytes count physical frames written and their
	// total length including length prefixes — the headline bytes on
	// the wire.
	Frames     int
	FrameBytes int64
	// MsgCount and MsgBytes break traffic down by message type.
	MsgCount map[msg.Type]int
	MsgBytes map[msg.Type]int64
	// SessionFrames and SessionBytes break the frame books down by
	// protocol session.
	SessionFrames map[msg.SessionID]int
	SessionBytes  map[msg.SessionID]int64
	// CoalesceFlushes counts batch frames sealed by the coalescing
	// layer (zero on a v1-only node, where every envelope is its own
	// frame).
	CoalesceFlushes int
}

// wireBooks is the lock-protected mutable form inside Node.
type wireBooks struct {
	mu            sync.Mutex
	frames        int
	frameBytes    int64
	flushes       int
	msgCount      map[msg.Type]int
	msgBytes      map[msg.Type]int64
	sessionFrames map[msg.SessionID]int
	sessionBytes  map[msg.SessionID]int64
}

func newWireBooks() *wireBooks {
	return &wireBooks{
		msgCount:      make(map[msg.Type]int),
		msgBytes:      make(map[msg.Type]int64),
		sessionFrames: make(map[msg.SessionID]int),
		sessionBytes:  make(map[msg.SessionID]int64),
	}
}

func (w *wireBooks) addEnvelope(typ msg.Type, payloadLen int) {
	w.mu.Lock()
	w.msgCount[typ]++
	w.msgBytes[typ] += int64(1 + payloadLen)
	w.mu.Unlock()
}

func (w *wireBooks) addFlush() {
	w.mu.Lock()
	w.flushes++
	w.mu.Unlock()
}

func (w *wireBooks) addFrame(sid msg.SessionID, frameLen int) {
	w.mu.Lock()
	w.frames++
	w.frameBytes += int64(frameLen)
	w.sessionFrames[sid]++
	w.sessionBytes[sid] += int64(frameLen)
	w.mu.Unlock()
}

func (w *wireBooks) snapshot() WireStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := WireStats{
		Frames:          w.frames,
		FrameBytes:      w.frameBytes,
		CoalesceFlushes: w.flushes,
		MsgCount:        make(map[msg.Type]int, len(w.msgCount)),
		MsgBytes:        make(map[msg.Type]int64, len(w.msgBytes)),
		SessionFrames:   make(map[msg.SessionID]int, len(w.sessionFrames)),
		SessionBytes:    make(map[msg.SessionID]int64, len(w.sessionBytes)),
	}
	for k, v := range w.msgCount {
		out.MsgCount[k] = v
	}
	for k, v := range w.msgBytes {
		out.MsgBytes[k] = v
	}
	for k, v := range w.sessionFrames {
		out.SessionFrames[k] = v
	}
	for k, v := range w.sessionBytes {
		out.SessionBytes[k] = v
	}
	return out
}

// WireStats returns a snapshot of the node's send-side wire books.
func (n *Node) WireStats() WireStats { return n.wire.snapshot() }

// pendingEnv is one envelope waiting in a destination's flush queue.
type pendingEnv struct {
	typ     msg.Type
	payload []byte
}

// destQueue is one destination's coalescing state. Its mutex also
// serialises the frame writes for the destination, so batch frames
// from the latency timer and from the send path cannot interleave and
// per-link FIFO order is preserved.
type destQueue struct {
	mu    sync.Mutex
	sid   msg.SessionID
	envs  []pendingEnv
	size  int // projected batch-frame length so far (incl. fixed cost)
	timer *time.Timer
	// backlog holds sealed frames that have not been written yet —
	// normally empty, populated only while the peer's connection is
	// failing. FIFO; bounded by coalesceMaxBacklog.
	backlog      [][]byte
	backlogBytes int
	tries        int // consecutive failed transmissions to this peer
}

func (n *Node) destQ(to msg.NodeID) *destQueue {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.outQ[to]
	if !ok {
		q = &destQueue{}
		n.outQ[to] = q
	}
	return q
}

// sendCoalesced queues one envelope for batching toward a peer,
// flushing first when the pending frame belongs to another session and
// immediately after when the size watermark is reached.
func (n *Node) sendCoalesced(sid msg.SessionID, to msg.NodeID, body msg.Body) {
	payload, err := body.MarshalBinary()
	if err != nil {
		return
	}
	n.wire.addEnvelope(body.MsgType(), len(payload))
	q := n.destQ(to)
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.envs) > 0 && q.sid != sid {
		n.flushLocked(to, q)
	}
	if len(q.envs) == 0 {
		q.sid = sid
		q.size = 4 + batchOverhead
	}
	q.envs = append(q.envs, pendingEnv{typ: body.MsgType(), payload: payload})
	q.size += batchEnvOverhead + len(payload)
	if q.size >= n.cfg.CoalesceBytes {
		n.flushLocked(to, q)
		return
	}
	if q.timer == nil {
		q.timer = time.AfterFunc(n.cfg.CoalesceDelay, func() { n.flushDest(to) })
	}
}

// flushDest drains a destination's queue (latency-timer and shutdown
// path).
func (n *Node) flushDest(to msg.NodeID) {
	q := n.destQ(to)
	q.mu.Lock()
	defer q.mu.Unlock()
	n.flushLocked(to, q)
}

// flushLocked seals the pending batch frame onto the backlog and
// drains it. Callers hold q.mu.
func (n *Node) flushLocked(to msg.NodeID, q *destQueue) {
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	if len(q.envs) > 0 {
		frame := appendBatchFrame(nil, n.cfg.Secret, q.sid, n.cfg.Self, to, q.envs)
		n.wire.addFrame(q.sid, len(frame))
		n.wire.addFlush()
		q.envs, q.size = nil, 0
		q.backlog = append(q.backlog, frame)
		q.backlogBytes += len(frame)
		// Bound memory toward a long-dead peer: shed the oldest
		// frames first, keeping the newest protocol state.
		for q.backlogBytes > coalesceMaxBacklog && len(q.backlog) > 1 {
			q.backlogBytes -= len(q.backlog[0])
			q.backlog = q.backlog[1:]
		}
	}
	n.drainLocked(to, q)
}

// drainLocked writes the backlog in order. A connection failure leaves
// the remainder queued and arms a backoff retry, up to the retry
// budget; each frame is written at most once, so a successful write is
// never duplicated by a later retry.
func (n *Node) drainLocked(to msg.NodeID, q *destQueue) {
	for len(q.backlog) > 0 {
		conn, err := n.conn(to)
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, werr := conn.Write(q.backlog[0]); werr != nil {
				n.dropConn(to, conn)
				err = werr
			}
		}
		if err != nil {
			if errors.Is(err, ErrClosed) {
				// Endpoint shut down: nothing will ever drain this.
				q.backlog, q.backlogBytes, q.tries = nil, 0, 0
				return
			}
			q.tries++
			if q.tries > coalesceMaxTries {
				q.backlog, q.backlogBytes, q.tries = nil, 0, 0
				return
			}
			q.timer = time.AfterFunc(coalesceRetryBase<<(q.tries-1), func() { n.flushDest(to) })
			return
		}
		q.tries = 0
		q.backlogBytes -= len(q.backlog[0])
		q.backlog = q.backlog[1:]
	}
}

// flushAll drains every destination queue (Close path).
func (n *Node) flushAll() {
	n.mu.Lock()
	dests := make([]msg.NodeID, 0, len(n.outQ))
	for to := range n.outQ {
		dests = append(dests, to)
	}
	n.mu.Unlock()
	for _, to := range dests {
		n.flushDest(to)
	}
}

// SealBatchFrame builds one batch frame from pre-marshalled envelopes
// (exposed for tests and fuzz seeding).
func SealBatchFrame(secret []byte, sid msg.SessionID, from, to msg.NodeID, bodies []msg.Body) ([]byte, error) {
	envs := make([]pendingEnv, len(bodies))
	for i, b := range bodies {
		payload, err := b.MarshalBinary()
		if err != nil {
			return nil, err
		}
		envs[i] = pendingEnv{typ: b.MsgType(), payload: payload}
	}
	return appendBatchFrame(nil, secret, sid, from, to, envs), nil
}

func appendBatchFrame(buf, secret []byte, sid msg.SessionID, from, to msg.NodeID, envs []pendingEnv) []byte {
	innerLen := batchOverhead
	for _, e := range envs {
		innerLen += batchEnvOverhead + len(e.payload)
	}
	out := append(buf, 0, 0, 0, 0)
	out = append(out, batchMarker)
	out = binary.BigEndian.AppendUint64(out, uint64(sid))
	out = binary.BigEndian.AppendUint64(out, uint64(from))
	out = binary.BigEndian.AppendUint64(out, uint64(to))
	out = binary.BigEndian.AppendUint16(out, uint16(len(envs)))
	for _, e := range envs {
		out = append(out, byte(e.typ))
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.payload)))
		out = append(out, e.payload...)
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(out[len(buf)+4:])
	out = mac.Sum(out)
	binary.BigEndian.PutUint32(out[len(buf):], uint32(innerLen))
	return out
}

// DecodeFrameMulti authenticates and decodes a frame's inner bytes in
// either wire format: a v1 frame yields one body, a batch frame yields
// its packed bodies in order. Like DecodeFrame it is pure and decoded
// bodies never alias inner.
func DecodeFrameMulti(codec *msg.Codec, secret []byte, self msg.NodeID, inner []byte) (msg.SessionID, msg.NodeID, []msg.Body, error) {
	if len(inner) == 0 {
		return 0, 0, nil, ErrBadFrame
	}
	if inner[0] != batchMarker {
		sid, from, body, err := DecodeFrame(codec, secret, self, inner)
		if err != nil {
			return 0, 0, nil, err
		}
		return sid, from, []msg.Body{body}, nil
	}
	if len(inner) < batchOverhead {
		return 0, 0, nil, ErrBadFrame
	}
	signed := inner[:len(inner)-sha256.Size]
	tag := inner[len(inner)-sha256.Size:]
	mac := hmac.New(sha256.New, secret)
	mac.Write(signed)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return 0, 0, nil, ErrBadFrame
	}
	sid := msg.SessionID(binary.BigEndian.Uint64(signed[1:9]))
	from := msg.NodeID(binary.BigEndian.Uint64(signed[9:17]))
	to := msg.NodeID(binary.BigEndian.Uint64(signed[17:25]))
	if to != self {
		return 0, 0, nil, ErrBadFrame
	}
	count := int(binary.BigEndian.Uint16(signed[25:27]))
	if count == 0 {
		return 0, 0, nil, ErrBadFrame
	}
	rest := signed[27:]
	bodies := make([]msg.Body, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < batchEnvOverhead {
			return 0, 0, nil, ErrBadFrame
		}
		typ := msg.Type(rest[0])
		plen := int(binary.BigEndian.Uint32(rest[1:5]))
		rest = rest[batchEnvOverhead:]
		if plen > len(rest) {
			return 0, 0, nil, ErrBadFrame
		}
		decoded, err := codec.Decode(typ, rest[:plen])
		if err != nil {
			return 0, 0, nil, err
		}
		bodies = append(bodies, decoded)
		rest = rest[plen:]
	}
	if len(rest) != 0 {
		return 0, 0, nil, ErrBadFrame
	}
	return sid, from, bodies, nil
}

// Package transport runs the protocol state machines over real TCP
// connections, one OS process per node (cmd/dkgnode). It substitutes
// the paper's TLS links (§2.3) with HMAC-SHA256-authenticated frames
// over TCP: the protocol logic consumes only channel *authentication*
// (who sent this message), which the MAC provides; confidentiality of
// the row polynomials in send messages additionally relies on the
// deployment network in this reproduction, as recorded in DESIGN.md.
//
// All inbound messages and timer expiries are serialised onto a single
// event loop, preserving the deterministic-state-machine discipline
// the protocol packages require. Senders retry with backoff (the
// paper's §2.1 retransmission-until-received behaviour); undeliverable
// messages are dropped once the node stops — protocol-level help
// retransmission covers longer outages.
package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hybriddkg/internal/msg"
)

// Errors returned by the transport.
var (
	ErrBadConfig = errors.New("transport: invalid configuration")
	ErrClosed    = errors.New("transport: node closed")
	ErrBadFrame  = errors.New("transport: malformed or unauthenticated frame")
)

// Handler consumes serialised events, mirroring the simulator's
// interface so the same protocol adapters work in both runtimes.
type Handler interface {
	HandleMessage(from msg.NodeID, body msg.Body)
	HandleTimer(id uint64)
	HandleRecover()
}

// Peer names a remote node.
type Peer struct {
	ID   msg.NodeID
	Addr string
}

// Config configures a transport node.
type Config struct {
	// Self is this node's index; Listen its bind address.
	Self   msg.NodeID
	Listen string
	// Peers lists all nodes (including self, whose entry is ignored
	// for dialing).
	Peers []Peer
	// Codec decodes inbound payloads into typed bodies.
	Codec *msg.Codec
	// Secret keys the frame MACs; all nodes share it (the stand-in
	// for the paper's mutually authenticated TLS links).
	Secret []byte
	// Handler receives events on the event loop.
	Handler Handler
	// TimerUnit scales protocol timer delays (virtual units) to wall
	// time. Default: 1ms per unit.
	TimerUnit time.Duration
	// DialRetry is the reconnect backoff (default 250ms).
	DialRetry time.Duration
}

// Node is a live transport endpoint. It implements dkg.Runtime (Send,
// SetTimer, StopTimer) so protocol nodes can be constructed directly
// on top of it.
type Node struct {
	cfg      Config
	listener net.Listener

	done chan struct{}

	// queue is the unbounded serialised event queue: handlers may
	// enqueue (self-sends) while the loop is mid-dispatch without
	// any deadlock risk.
	qmu   sync.Mutex
	qcond *sync.Cond
	queue []event

	mu      sync.Mutex
	conns   map[msg.NodeID]net.Conn
	inbound map[net.Conn]bool
	timers  map[uint64]*time.Timer
	closed  bool

	wg sync.WaitGroup
}

type event struct {
	kind    uint8 // 1 = message, 2 = timer, 3 = recover, 4 = op
	from    msg.NodeID
	body    msg.Body
	timerID uint64
	op      func()
}

// Listen starts the endpoint: binds the listener, starts the accept
// and event loops, and begins dialing peers lazily on first send.
func Listen(cfg Config) (*Node, error) {
	if cfg.Self < 1 || cfg.Codec == nil || cfg.Handler == nil || len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("%w: missing self/codec/handler/secret", ErrBadConfig)
	}
	if cfg.TimerUnit <= 0 {
		cfg.TimerUnit = time.Millisecond
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:      cfg,
		listener: ln,
		done:     make(chan struct{}),
		conns:    make(map[msg.NodeID]net.Conn),
		inbound:  make(map[net.Conn]bool),
		timers:   make(map[uint64]*time.Timer),
	}
	n.qcond = sync.NewCond(&n.qmu)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	return n, nil
}

// enqueue appends an event to the serialised queue.
func (n *Node) enqueue(ev event) {
	n.qmu.Lock()
	n.queue = append(n.queue, ev)
	n.qmu.Unlock()
	n.qcond.Signal()
}

// Do runs fn on the event loop — operator actions (starting a
// protocol, injecting inputs) must go through here so protocol state
// machines are only ever touched by one goroutine.
func (n *Node) Do(fn func()) {
	n.enqueue(event{kind: 4, op: fn})
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// SetPeers installs or replaces the peer directory. It allows
// clusters to bind all listeners on ephemeral ports first and
// exchange addresses afterwards.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers = append([]Peer(nil), peers...)
}

// Close shuts the endpoint down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, tm := range n.timers {
		tm.Stop()
	}
	for _, c := range n.conns {
		c.Close()
	}
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	close(n.done)
	n.qcond.Broadcast()
	n.listener.Close()
	n.wg.Wait()
	return nil
}

// Send implements dkg.Runtime: frame, MAC and transmit. Connection
// failures drop the message (protocol retransmission recovers).
func (n *Node) Send(to msg.NodeID, body msg.Body) {
	if to == n.cfg.Self {
		// Self-delivery goes straight onto the event loop.
		n.enqueue(event{kind: 1, from: n.cfg.Self, body: body})
		return
	}
	frame, err := n.seal(to, body)
	if err != nil {
		return
	}
	conn, err := n.conn(to)
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(frame); err != nil {
		n.dropConn(to, conn)
	}
}

// SetTimer implements dkg.Runtime.
func (n *Node) SetTimer(id uint64, delay int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if tm, ok := n.timers[id]; ok {
		tm.Stop()
	}
	d := time.Duration(delay) * n.cfg.TimerUnit
	n.timers[id] = time.AfterFunc(d, func() {
		n.enqueue(event{kind: 2, timerID: id})
	})
}

// StopTimer implements dkg.Runtime.
func (n *Node) StopTimer(id uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if tm, ok := n.timers[id]; ok {
		tm.Stop()
		delete(n.timers, id)
	}
}

// SignalRecover injects the operator recover event (post-reboot).
func (n *Node) SignalRecover() {
	n.enqueue(event{kind: 3})
}

// --- internals -------------------------------------------------------

func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		n.qmu.Lock()
		for len(n.queue) == 0 {
			select {
			case <-n.done:
				n.qmu.Unlock()
				return
			default:
			}
			n.qcond.Wait()
		}
		ev := n.queue[0]
		n.queue = n.queue[1:]
		n.qmu.Unlock()
		select {
		case <-n.done:
			return
		default:
		}
		switch ev.kind {
		case 1:
			n.cfg.Handler.HandleMessage(ev.from, ev.body)
		case 2:
			n.cfg.Handler.HandleTimer(ev.timerID)
		case 3:
			n.cfg.Handler.HandleRecover()
		case 4:
			ev.op()
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	for {
		select {
		case <-n.done:
			return
		default:
		}
		from, body, err := n.readFrame(conn)
		if err != nil {
			return
		}
		n.enqueue(event{kind: 1, from: from, body: body})
	}
}

// conn returns (dialing if needed) the outgoing connection to a peer.
func (n *Node) conn(to msg.NodeID) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()

	n.mu.Lock()
	var addr string
	for _, p := range n.cfg.Peers {
		if p.ID == to {
			addr = p.Addr
			break
		}
	}
	n.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("%w: unknown peer %d", ErrBadConfig, to)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	n.conns[to] = c
	return c, nil
}

func (n *Node) dropConn(to msg.NodeID, c net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.conns[to]; ok && cur == c {
		delete(n.conns, to)
	}
	c.Close()
}

// Frame layout: u32 length ‖ u8 type ‖ u64 from ‖ u64 to ‖ payload ‖
// 32-byte HMAC-SHA256 over (type ‖ from ‖ to ‖ payload).
const frameOverhead = 1 + 8 + 8 + sha256.Size

func (n *Node) seal(to msg.NodeID, body msg.Body) ([]byte, error) {
	payload, err := body.MarshalBinary()
	if err != nil {
		return nil, err
	}
	inner := make([]byte, 0, frameOverhead+len(payload))
	inner = append(inner, byte(body.MsgType()))
	inner = binary.BigEndian.AppendUint64(inner, uint64(n.cfg.Self))
	inner = binary.BigEndian.AppendUint64(inner, uint64(to))
	inner = append(inner, payload...)
	mac := hmac.New(sha256.New, n.cfg.Secret)
	mac.Write(inner)
	inner = mac.Sum(inner)
	out := make([]byte, 0, 4+len(inner))
	out = binary.BigEndian.AppendUint32(out, uint32(len(inner)))
	return append(out, inner...), nil
}

func (n *Node) readFrame(conn net.Conn) (msg.NodeID, msg.Body, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length < frameOverhead || length > 64<<20 {
		return 0, nil, ErrBadFrame
	}
	inner := make([]byte, length)
	if _, err := io.ReadFull(conn, inner); err != nil {
		return 0, nil, err
	}
	body := inner[:len(inner)-sha256.Size]
	tag := inner[len(inner)-sha256.Size:]
	mac := hmac.New(sha256.New, n.cfg.Secret)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return 0, nil, ErrBadFrame
	}
	typ := msg.Type(body[0])
	from := msg.NodeID(binary.BigEndian.Uint64(body[1:9]))
	to := msg.NodeID(binary.BigEndian.Uint64(body[9:17]))
	if to != n.cfg.Self {
		return 0, nil, ErrBadFrame
	}
	decoded, err := n.cfg.Codec.Decode(typ, body[17:])
	if err != nil {
		return 0, nil, err
	}
	return from, decoded, nil
}

// Package transport runs the protocol state machines over real TCP
// connections, one OS process per node (cmd/dkgnode). It substitutes
// the paper's TLS links (§2.3) with HMAC-SHA256-authenticated frames
// over TCP: the protocol logic consumes only channel *authentication*
// (who sent this message), which the MAC provides; confidentiality of
// the row polynomials in send messages additionally relies on the
// deployment network in this reproduction, as recorded in DESIGN.md.
//
// All inbound messages and timer expiries are serialised onto a single
// event loop, preserving the deterministic-state-machine discipline
// the protocol packages require. Senders retry with backoff (the
// paper's §2.1 retransmission-until-received behaviour); undeliverable
// messages are dropped once the node stops — protocol-level help
// retransmission covers longer outages.
//
// A node is session-multiplexed: every frame carries a MAC-covered
// session identifier, and a demultiplexing router dispatches inbound
// traffic to per-session handlers registered with RegisterSession.
// Frames for sessions the node never hosted or has already retired are
// rejected at the router — before any decode of protocol semantics —
// and counted in DemuxStats. Because the MAC covers the session
// identifier, an attacker without the link secret cannot splice a
// frame captured in one session into another; a Byzantine *member*
// (which holds the shared secret) can re-seal, so protocol messages
// additionally carry their own session counters as defence in depth.
// Sessions share the node's TCP links and its event loop — S
// concurrent protocol instances cost one socket per peer, not S.
package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"hybriddkg/internal/msg"
)

// Errors returned by the transport.
var (
	ErrBadConfig      = errors.New("transport: invalid configuration")
	ErrClosed         = errors.New("transport: node closed")
	ErrBadFrame       = errors.New("transport: malformed or unauthenticated frame")
	ErrSessionExists  = errors.New("transport: session already registered")
	ErrSessionRetired = errors.New("transport: session already retired")
)

// Handler consumes serialised events, mirroring the simulator's
// interface so the same protocol adapters work in both runtimes.
type Handler interface {
	HandleMessage(from msg.NodeID, body msg.Body)
	HandleTimer(id uint64)
	HandleRecover()
}

// Peer names a remote node.
type Peer struct {
	ID   msg.NodeID
	Addr string
}

// Config configures a transport node.
type Config struct {
	// Self is this node's index; Listen its bind address.
	Self   msg.NodeID
	Listen string
	// Peers lists all nodes (including self, whose entry is ignored
	// for dialing).
	Peers []Peer
	// Codec decodes inbound payloads into typed bodies.
	Codec *msg.Codec
	// Secret keys the frame MACs; all nodes share it (the stand-in
	// for the paper's mutually authenticated TLS links).
	Secret []byte
	// Handler receives default-session (session 0) events on the
	// event loop. It may be nil when the node is used purely as a
	// session-multiplexed endpoint (RegisterSession); session-0
	// frames are then dropped as unknown.
	Handler Handler
	// TimerUnit scales protocol timer delays (virtual units) to wall
	// time. Default: 1ms per unit.
	TimerUnit time.Duration
	// DialRetry is the reconnect backoff (default 250ms).
	DialRetry time.Duration
	// Observer, when set, sees every successfully decoded inbound
	// protocol message (including self-delivery) before it is
	// dispatched. It is the attachment point of the verification
	// pipeline's speculator: read-loop goroutines feed it concurrently
	// while the event loop (or session lane) is still working through
	// earlier traffic, so expensive checks run on idle cores ahead of
	// consumption. It must be safe for concurrent use, must not block,
	// and must not touch protocol state.
	Observer func(sid msg.SessionID, from msg.NodeID, body msg.Body)
	// Coalesce enables wire-format-v2 batch frames on the send side:
	// envelopes to one destination accumulate in a per-peer flush queue
	// and travel as one MAC-covered batch frame, draining on the size
	// watermark (CoalesceBytes), the latency timer (CoalesceDelay), a
	// session switch, or Close. Inbound decoding always accepts both
	// formats, so coalescing and v1-only nodes interoperate.
	Coalesce bool
	// CoalesceBytes is the batch-frame size watermark (default 16 KiB).
	CoalesceBytes int
	// CoalesceDelay is the maximum time an envelope waits in the flush
	// queue (default 500µs).
	CoalesceDelay time.Duration
	// ShardSessions gives every registered session its own serial
	// dispatch lane (one goroutine per live session) instead of
	// funnelling all sessions through the single event loop. Events of
	// one session stay strictly ordered on its lane — the protocol
	// state machines keep their single-threaded discipline — while S
	// concurrent sessions occupy up to S cores. The default session
	// (0) and operator ops always stay on the main event loop.
	// Handlers of different sessions may then run concurrently: the
	// engine's bookkeeping is lock-protected, but callers holding
	// cross-session state in handlers must synchronise it themselves.
	ShardSessions bool
}

// Node is a live transport endpoint. It implements dkg.Runtime (Send,
// SetTimer, StopTimer) so protocol nodes can be constructed directly
// on top of it.
type Node struct {
	cfg      Config
	listener net.Listener

	done chan struct{}

	// queue is the unbounded serialised event queue: handlers may
	// enqueue (self-sends) while the loop is mid-dispatch without
	// any deadlock risk.
	qmu   sync.Mutex
	qcond *sync.Cond
	queue []event

	mu       sync.Mutex
	conns    map[msg.NodeID]net.Conn
	inbound  map[net.Conn]bool
	timers   map[timerKey]*time.Timer
	sessions map[msg.SessionID]Handler
	retired  map[msg.SessionID]bool
	lanes    map[msg.SessionID]*lane // ShardSessions dispatch lanes
	outQ     map[msg.NodeID]*destQueue
	demux    DemuxStats
	closed   bool

	// wire holds the send-side bytes-on-wire books.
	wire *wireBooks

	wg sync.WaitGroup
}

// lane is one session's serial dispatch queue: an unbounded
// mutex+cond queue (the same shape as the main event loop's, so a
// handler's self-sends can never deadlock on a full channel) drained
// by a dedicated goroutine. Events of the session are dispatched in
// enqueue order; nothing else ever invokes the session's handler.
type lane struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []event
	stopped bool
}

func newLane() *lane {
	l := &lane{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *lane) enqueue(ev event) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, ev)
	l.mu.Unlock()
	l.cond.Signal()
}

// stop marks the lane dead and wakes its goroutine. It never joins:
// RetireSession may run on the lane's own goroutine (a session
// completing retires itself through the engine), so joining here
// would self-deadlock; Close joins through the node's WaitGroup.
func (l *lane) stop() {
	l.mu.Lock()
	l.stopped = true
	l.queue = nil
	l.mu.Unlock()
	l.cond.Broadcast()
}

// run drains the lane until stopped. Pending events at stop time are
// dropped — the session is retired, and the router would reject them
// anyway.
func (n *Node) runLane(l *lane) {
	defer n.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.stopped {
			l.cond.Wait()
		}
		if l.stopped {
			l.mu.Unlock()
			return
		}
		ev := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		n.dispatchEvent(ev)
	}
}

// timerKey namespaces timers per session so concurrent protocol
// instances can reuse the same local timer identifiers.
type timerKey struct {
	session msg.SessionID
	id      uint64
}

// DemuxStats counts traffic rejected by the session router.
type DemuxStats struct {
	// UnknownSession counts frames for sessions this node never
	// hosted; StaleSession counts frames for retired sessions
	// (completed-session replay). BadFrame counts frames that failed
	// length or MAC checks — including cross-session splices, since
	// the MAC covers the session identifier.
	UnknownSession int
	StaleSession   int
	BadFrame       int
}

type event struct {
	kind    uint8 // 1 = message, 2 = timer, 3 = recover, 4 = op
	session msg.SessionID
	from    msg.NodeID
	body    msg.Body
	timerID uint64
	op      func()
}

// Listen starts the endpoint: binds the listener, starts the accept
// and event loops, and begins dialing peers lazily on first send.
func Listen(cfg Config) (*Node, error) {
	if cfg.Self < 1 || cfg.Codec == nil || len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("%w: missing self/codec/secret", ErrBadConfig)
	}
	if cfg.TimerUnit <= 0 {
		cfg.TimerUnit = time.Millisecond
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.CoalesceBytes <= 0 {
		cfg.CoalesceBytes = defCoalesceBytes
	}
	if cfg.CoalesceDelay <= 0 {
		cfg.CoalesceDelay = defCoalesceDelay
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:      cfg,
		listener: ln,
		done:     make(chan struct{}),
		conns:    make(map[msg.NodeID]net.Conn),
		inbound:  make(map[net.Conn]bool),
		timers:   make(map[timerKey]*time.Timer),
		sessions: make(map[msg.SessionID]Handler),
		retired:  make(map[msg.SessionID]bool),
		lanes:    make(map[msg.SessionID]*lane),
		outQ:     make(map[msg.NodeID]*destQueue),
		wire:     newWireBooks(),
	}
	n.qcond = sync.NewCond(&n.qmu)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	return n, nil
}

// enqueue appends an event to the serialised queue, or — for message
// and timer events of a sharded session — to that session's dispatch
// lane.
func (n *Node) enqueue(ev event) {
	if (ev.kind == 1 || ev.kind == 2) && ev.session != 0 {
		if l := n.laneFor(ev.session); l != nil {
			l.enqueue(ev)
			return
		}
	}
	n.qmu.Lock()
	n.queue = append(n.queue, ev)
	n.qmu.Unlock()
	n.qcond.Signal()
}

// laneFor returns the dispatch lane of a sharded session (nil when
// sharding is off or the session has no lane).
func (n *Node) laneFor(sid msg.SessionID) *lane {
	if !n.cfg.ShardSessions {
		return nil
	}
	n.mu.Lock()
	l := n.lanes[sid]
	n.mu.Unlock()
	return l
}

// Do runs fn on the event loop — operator actions (starting a
// protocol, injecting inputs) must go through here so protocol state
// machines are only ever touched by one goroutine.
func (n *Node) Do(fn func()) {
	n.enqueue(event{kind: 4, op: fn})
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// SetPeers installs or replaces the peer directory. It allows
// clusters to bind all listeners on ephemeral ports first and
// exchange addresses afterwards.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers = append([]Peer(nil), peers...)
}

// Close shuts the endpoint down and waits for its goroutines. Pending
// coalesced envelopes are flushed first so a clean shutdown leaves no
// protocol traffic stranded in the batching queues.
func (n *Node) Close() error {
	n.flushAll()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, tm := range n.timers {
		tm.Stop()
	}
	for _, c := range n.conns {
		c.Close()
	}
	for c := range n.inbound {
		c.Close()
	}
	for sid, l := range n.lanes {
		l.stop()
		delete(n.lanes, sid)
	}
	n.mu.Unlock()
	close(n.done)
	n.qcond.Broadcast()
	n.listener.Close()
	n.wg.Wait()
	return nil
}

// Send implements dkg.Runtime for the default session: frame, MAC and
// transmit. Connection failures drop the message (protocol
// retransmission recovers).
func (n *Node) Send(to msg.NodeID, body msg.Body) { n.sendSession(0, to, body) }

func (n *Node) sendSession(sid msg.SessionID, to msg.NodeID, body msg.Body) {
	if to == n.cfg.Self {
		// Self-delivery goes straight onto the event loop.
		if n.cfg.Observer != nil {
			n.cfg.Observer(sid, n.cfg.Self, body)
		}
		n.enqueue(event{kind: 1, session: sid, from: n.cfg.Self, body: body})
		return
	}
	if n.cfg.Coalesce {
		n.sendCoalesced(sid, to, body)
		return
	}
	bufp := framePool.Get().(*[]byte)
	frame, err := appendFrame((*bufp)[:0], n.cfg.Secret, sid, n.cfg.Self, to, body)
	if err != nil {
		framePool.Put(bufp)
		return
	}
	n.wire.addEnvelope(body.MsgType(), len(frame)-4-frameOverhead)
	n.wire.addFrame(sid, len(frame))
	conn, err := n.conn(to)
	if err != nil {
		putFrameBuf(bufp, frame)
		return
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(frame); err != nil {
		n.dropConn(to, conn)
	}
	// The kernel has copied the frame (or the write failed); either
	// way the buffer is ours again.
	putFrameBuf(bufp, frame)
}

// SetTimer implements dkg.Runtime for the default session.
func (n *Node) SetTimer(id uint64, delay int64) { n.setSessionTimer(0, id, delay) }

func (n *Node) setSessionTimer(sid msg.SessionID, id uint64, delay int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	key := timerKey{session: sid, id: id}
	if tm, ok := n.timers[key]; ok {
		tm.Stop()
	}
	d := time.Duration(delay) * n.cfg.TimerUnit
	n.timers[key] = time.AfterFunc(d, func() {
		n.enqueue(event{kind: 2, session: sid, timerID: id})
	})
}

// StopTimer implements dkg.Runtime for the default session.
func (n *Node) StopTimer(id uint64) { n.stopSessionTimer(0, id) }

func (n *Node) stopSessionTimer(sid msg.SessionID, id uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := timerKey{session: sid, id: id}
	if tm, ok := n.timers[key]; ok {
		tm.Stop()
		delete(n.timers, key)
	}
}

// SignalRecover injects the operator recover event (post-reboot). It
// is fanned out to the default handler and every live session.
func (n *Node) SignalRecover() {
	n.enqueue(event{kind: 3})
}

// --- session multiplexing --------------------------------------------

// SessionPort is a session-scoped runtime surface: it implements
// dkg.Runtime (Send, SetTimer, StopTimer) with every send tagged with
// the session identifier and every timer namespaced to the session.
type SessionPort struct {
	node *Node
	sid  msg.SessionID
}

// Session returns the port's session identifier.
func (p *SessionPort) Session() msg.SessionID { return p.sid }

// Send implements dkg.Runtime.
func (p *SessionPort) Send(to msg.NodeID, body msg.Body) { p.node.sendSession(p.sid, to, body) }

// SetTimer implements dkg.Runtime.
func (p *SessionPort) SetTimer(id uint64, delay int64) { p.node.setSessionTimer(p.sid, id, delay) }

// StopTimer implements dkg.Runtime.
func (p *SessionPort) StopTimer(id uint64) { p.node.stopSessionTimer(p.sid, id) }

// RegisterSession installs a handler for one protocol instance and
// returns its runtime port. Re-registering a live or retired session
// fails: session identifiers are single-use by design (a completed
// instance must never be resurrected by replayed traffic).
func (n *Node) RegisterSession(sid msg.SessionID, h Handler) (*SessionPort, error) {
	if h == nil {
		return nil, fmt.Errorf("%w: nil session handler", ErrBadConfig)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if n.retired[sid] {
		return nil, fmt.Errorf("%w: %v", ErrSessionRetired, sid)
	}
	if _, dup := n.sessions[sid]; dup {
		return nil, fmt.Errorf("%w: %v", ErrSessionExists, sid)
	}
	n.sessions[sid] = h
	if n.cfg.ShardSessions && sid != 0 {
		l := newLane()
		n.lanes[sid] = l
		n.wg.Add(1)
		go n.runLane(l)
	}
	return &SessionPort{node: n, sid: sid}, nil
}

// RetireSession removes a session's handler and cancels its timers.
// Later frames for the session are dropped by the router and counted
// as stale.
func (n *Node) RetireSession(sid msg.SessionID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, live := n.sessions[sid]; !live {
		return
	}
	delete(n.sessions, sid)
	n.retired[sid] = true
	if l := n.lanes[sid]; l != nil {
		// Mark-and-signal only: the retire call may be running on this
		// very lane (a completing session retiring itself through the
		// engine), so the goroutine is joined by Close, not here.
		l.stop()
		delete(n.lanes, sid)
	}
	for key, tm := range n.timers {
		if key.session == sid {
			tm.Stop()
			delete(n.timers, key)
		}
	}
}

// DemuxStats returns a snapshot of the router's rejection counters.
func (n *Node) DemuxStats() DemuxStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.demux
}

// handlerFor resolves the handler for a session (nil = drop). Message
// rejections are counted; timer fires racing a retirement are not.
func (n *Node) handlerFor(sid msg.SessionID, countDrop bool) Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.sessions[sid]; ok {
		return h
	}
	if sid == 0 && n.cfg.Handler != nil {
		return n.cfg.Handler
	}
	if countDrop {
		if n.retired[sid] {
			n.demux.StaleSession++
		} else {
			n.demux.UnknownSession++
		}
	}
	return nil
}

// --- internals -------------------------------------------------------

func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		n.qmu.Lock()
		for len(n.queue) == 0 {
			select {
			case <-n.done:
				n.qmu.Unlock()
				return
			default:
			}
			n.qcond.Wait()
		}
		ev := n.queue[0]
		n.queue = n.queue[1:]
		n.qmu.Unlock()
		select {
		case <-n.done:
			return
		default:
		}
		switch ev.kind {
		case 1, 2:
			// A frame that entered the main queue just before its
			// session's lane existed must still reach the handler on
			// the lane — never on this goroutine — or two goroutines
			// could run one session's state machine concurrently.
			if l := n.laneFor(ev.session); l != nil {
				l.enqueue(ev)
				continue
			}
			n.dispatchEvent(ev)
		case 3:
			// The whole process recovered: signal the default handler
			// and every live session, in ascending session order.
			// Sharded sessions receive the signal on their lanes.
			n.mu.Lock()
			var inline []Handler
			if n.cfg.Handler != nil {
				inline = append(inline, n.cfg.Handler)
			}
			sids := make([]msg.SessionID, 0, len(n.sessions))
			for sid := range n.sessions {
				sids = append(sids, sid)
			}
			sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
			lanes := make([]*lane, len(sids))
			for i, sid := range sids {
				if l := n.lanes[sid]; l != nil {
					lanes[i] = l
				} else {
					inline = append(inline, n.sessions[sid])
				}
			}
			n.mu.Unlock()
			for i, l := range lanes {
				if l != nil {
					l.enqueue(event{kind: 3, session: sids[i]})
				}
			}
			for _, h := range inline {
				h.HandleRecover()
			}
		case 4:
			ev.op()
		}
	}
}

// dispatchEvent delivers one message, timer or per-session recover
// event to its handler. It runs on the main event loop for unsharded
// sessions and on the session's lane goroutine otherwise — exactly one
// goroutine per session either way.
func (n *Node) dispatchEvent(ev event) {
	switch ev.kind {
	case 1:
		if h := n.handlerFor(ev.session, true); h != nil {
			h.HandleMessage(ev.from, ev.body)
		}
	case 2:
		if h := n.handlerFor(ev.session, false); h != nil {
			h.HandleTimer(ev.timerID)
		}
	case 3:
		if h := n.handlerFor(ev.session, false); h != nil {
			h.HandleRecover()
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	for {
		select {
		case <-n.done:
			return
		default:
		}
		sid, from, bodies, err := n.readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				n.mu.Lock()
				n.demux.BadFrame++
				n.mu.Unlock()
			}
			return
		}
		// Speculation hook: read loops run one-per-connection, so the
		// observer (a pool submit) overlaps verification with the
		// event loop's dispatch of earlier traffic.
		for _, body := range bodies {
			if n.cfg.Observer != nil {
				n.cfg.Observer(sid, from, body)
			}
			n.enqueue(event{kind: 1, session: sid, from: from, body: body})
		}
	}
}

// conn returns (dialing if needed) the outgoing connection to a peer.
func (n *Node) conn(to msg.NodeID) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()

	n.mu.Lock()
	var addr string
	for _, p := range n.cfg.Peers {
		if p.ID == to {
			addr = p.Addr
			break
		}
	}
	n.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("%w: unknown peer %d", ErrBadConfig, to)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	n.conns[to] = c
	return c, nil
}

func (n *Node) dropConn(to msg.NodeID, c net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.conns[to]; ok && cur == c {
		delete(n.conns, to)
	}
	c.Close()
}

// Frame layout: u32 length ‖ u8 type ‖ u64 session ‖ u64 from ‖
// u64 to ‖ payload ‖ 32-byte HMAC-SHA256 over (type ‖ session ‖ from ‖
// to ‖ payload). The session identifier is inside the MAC, so a frame
// captured in one session cannot be replayed into another by anyone
// who does not hold the link secret.
const frameOverhead = 1 + 8 + 8 + 8 + sha256.Size

// framePool recycles the per-frame scratch buffers of the encode
// (sendSession) and decode (readFrame) paths. Safe on the decode side
// because every registered decoder copies what it keeps (msg.Reader's
// Blob/Big copy; commitment unmarshalling re-blobs) — a decoded body
// never aliases the frame buffer. Buffers above maxPooledFrame are
// never retained: the frame length field is attacker-controlled (read
// before the MAC check, up to 64 MB), and a pool must not let a
// hostile peer pin giant buffers past its connection's lifetime.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledFrame caps the capacity of buffers returned to framePool;
// larger ones are left for the garbage collector.
const maxPooledFrame = 64 << 10

// putFrameBuf returns a scratch buffer to the pool unless the frame
// outgrew the retention cap, in which case the original (small)
// pooled array is returned instead of the oversized replacement.
func putFrameBuf(bufp *[]byte, used []byte) {
	if cap(used) <= maxPooledFrame {
		*bufp = used[:0]
	}
	framePool.Put(bufp)
}

// SealFrame builds a length-prefixed, MAC-authenticated frame. It is
// the pure sending half of the wire format (exposed for tests, fuzz
// seeding and tooling).
func SealFrame(secret []byte, sid msg.SessionID, from, to msg.NodeID, body msg.Body) ([]byte, error) {
	return appendFrame(nil, secret, sid, from, to, body)
}

// appendFrame appends the sealed frame to buf (which may be a recycled
// scratch buffer) and returns the extended slice.
func appendFrame(buf, secret []byte, sid msg.SessionID, from, to msg.NodeID, body msg.Body) ([]byte, error) {
	payload, err := body.MarshalBinary()
	if err != nil {
		return nil, err
	}
	innerLen := frameOverhead + len(payload)
	out := append(buf, 0, 0, 0, 0) // length prefix, patched below
	out = append(out, byte(body.MsgType()))
	out = binary.BigEndian.AppendUint64(out, uint64(sid))
	out = binary.BigEndian.AppendUint64(out, uint64(from))
	out = binary.BigEndian.AppendUint64(out, uint64(to))
	out = append(out, payload...)
	mac := hmac.New(sha256.New, secret)
	mac.Write(out[len(buf)+4:])
	out = mac.Sum(out)
	binary.BigEndian.PutUint32(out[len(buf):], uint32(innerLen))
	return out, nil
}

// DecodeFrame authenticates and decodes a frame's inner bytes (the
// part after the u32 length prefix): verify the MAC, reject frames not
// addressed to self, and decode the payload through the codec. It is
// pure — exposed for fuzzing the full untrusted-bytes path the read
// loop runs on every inbound frame. Decoded bodies must never alias
// inner: the read loop recycles the buffer immediately after this
// returns, so codec decoders are required to copy what they keep
// (msg.Reader's accessors all do).
func DecodeFrame(codec *msg.Codec, secret []byte, self msg.NodeID, inner []byte) (msg.SessionID, msg.NodeID, msg.Body, error) {
	if len(inner) < frameOverhead {
		return 0, 0, nil, ErrBadFrame
	}
	body := inner[:len(inner)-sha256.Size]
	tag := inner[len(inner)-sha256.Size:]
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return 0, 0, nil, ErrBadFrame
	}
	typ := msg.Type(body[0])
	sid := msg.SessionID(binary.BigEndian.Uint64(body[1:9]))
	from := msg.NodeID(binary.BigEndian.Uint64(body[9:17]))
	to := msg.NodeID(binary.BigEndian.Uint64(body[17:25]))
	if to != self {
		return 0, 0, nil, ErrBadFrame
	}
	decoded, err := codec.Decode(typ, body[25:])
	if err != nil {
		return 0, 0, nil, err
	}
	return sid, from, decoded, nil
}

func (n *Node) readFrame(conn net.Conn) (msg.SessionID, msg.NodeID, []msg.Body, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length < frameOverhead || length > 64<<20 {
		return 0, 0, nil, ErrBadFrame
	}
	// Pooled read buffer: the codec's decoders copy everything they
	// retain, so the buffer is reusable the moment decoding returns.
	bufp := framePool.Get().(*[]byte)
	var inner []byte
	if cap(*bufp) >= int(length) {
		inner = (*bufp)[:length]
	} else {
		inner = make([]byte, length)
	}
	if _, err := io.ReadFull(conn, inner); err != nil {
		putFrameBuf(bufp, inner)
		return 0, 0, nil, err
	}
	sid, from, bodies, err := DecodeFrameMulti(n.cfg.Codec, n.cfg.Secret, n.cfg.Self, inner)
	putFrameBuf(bufp, inner)
	return sid, from, bodies, err
}

package transport

import (
	"fmt"

	"hybriddkg/internal/telemetry"
)

// RetryBacklog reports the coalescing layer's retry state: frames
// sealed but not yet written (peer connection failing) and their
// total bytes. Scrape-time only — it walks every destination queue.
func (n *Node) RetryBacklog() (frames int, bytes int) {
	n.mu.Lock()
	queues := make([]*destQueue, 0, len(n.outQ))
	for _, q := range n.outQ {
		queues = append(queues, q)
	}
	n.mu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		frames += len(q.backlog)
		bytes += q.backlogBytes
		q.mu.Unlock()
	}
	return frames, bytes
}

// RegisterMetrics exposes the node's send-side wire books and retry
// backlog as scrape-time telemetry samples, subsuming the WireStats
// text dump: frames and bytes on the wire, messages by count and
// bytes, coalesce flushes, retry-backlog depth, and per-session byte
// totals.
func (n *Node) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		ws := n.WireStats()
		emit(telemetry.Sample{Name: "transport_frames_total", Help: "Physical frames written", Kind: telemetry.KindCounter, Value: float64(ws.Frames)})
		emit(telemetry.Sample{Name: "transport_frame_bytes_total", Help: "Bytes on the wire including frame overhead", Kind: telemetry.KindCounter, Value: float64(ws.FrameBytes)})
		emit(telemetry.Sample{Name: "transport_coalesce_flushes_total", Help: "Batch frames sealed by the coalescing layer", Kind: telemetry.KindCounter, Value: float64(ws.CoalesceFlushes)})
		var msgs, msgBytes int64
		for _, c := range ws.MsgCount {
			msgs += int64(c)
		}
		for _, b := range ws.MsgBytes {
			msgBytes += b
		}
		emit(telemetry.Sample{Name: "transport_messages_total", Help: "Protocol envelopes sent", Kind: telemetry.KindCounter, Value: float64(msgs)})
		emit(telemetry.Sample{Name: "transport_message_bytes_total", Help: "Envelope payload bytes sent", Kind: telemetry.KindCounter, Value: float64(msgBytes)})
		frames, bytes := n.RetryBacklog()
		emit(telemetry.Sample{Name: "transport_retry_backlog_frames", Help: "Sealed frames awaiting retransmission", Kind: telemetry.KindGauge, Value: float64(frames)})
		emit(telemetry.Sample{Name: "transport_retry_backlog_bytes", Help: "Bytes awaiting retransmission", Kind: telemetry.KindGauge, Value: float64(bytes)})
		for sid, b := range ws.SessionBytes {
			emit(telemetry.Sample{
				Name:  fmt.Sprintf("transport_session_bytes_total{session=%q}", fmt.Sprintf("%d", uint64(sid))),
				Help:  "Frame bytes attributed to one protocol session",
				Kind:  telemetry.KindCounter,
				Value: float64(b),
			})
		}
	})
}

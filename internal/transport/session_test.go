package transport_test

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

// sessionSink records which session's handler saw which bodies.
type sessionSink struct {
	ch  chan msg.Body
	rec chan struct{}
}

func newSessionSink() *sessionSink {
	return &sessionSink{ch: make(chan msg.Body, 16), rec: make(chan struct{}, 4)}
}

func (s *sessionSink) HandleMessage(_ msg.NodeID, body msg.Body) { s.ch <- body }
func (s *sessionSink) HandleTimer(uint64)                        {}
func (s *sessionSink) HandleRecover()                            { s.rec <- struct{}{} }

func waitDemux(t *testing.T, node *transport.Node, ok func(transport.DemuxStats) bool) transport.DemuxStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := node.DemuxStats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("demux stats never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionDemux: frames reach the handler of their own session
// only; unknown sessions and retired sessions are rejected and
// counted, and retired sessions cannot be re-registered.
func TestSessionDemux(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("demux-secret")

	recv, err := transport.Listen(transport.Config{
		Self: 2, Listen: "127.0.0.1:0", Codec: codec, Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sinkA, sinkB := newSessionSink(), newSessionSink()
	if _, err := recv.RegisterSession(1, sinkA); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.RegisterSession(2, sinkB); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.RegisterSession(1, sinkA); err == nil {
		t.Fatal("duplicate session registration accepted")
	}

	peers := []transport.Peer{{ID: 2, Addr: recv.Addr()}}
	sender, err := transport.Listen(transport.Config{
		Self: 1, Listen: "127.0.0.1:0", Peers: peers, Codec: codec, Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	portA, err := sender.RegisterSession(1, newSessionSink())
	if err != nil {
		t.Fatal(err)
	}
	portGhost, err := sender.RegisterSession(9, newSessionSink())
	if err != nil {
		t.Fatal(err)
	}

	help := &vss.HelpMsg{Session: vss.SessionID{Dealer: 1, Tau: 1}}
	portA.Send(2, help)
	select {
	case body := <-sinkA.ch:
		if _, ok := body.(*vss.HelpMsg); !ok {
			t.Fatalf("unexpected body %T", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session frame never arrived")
	}
	select {
	case <-sinkB.ch:
		t.Fatal("session 1 frame delivered to session 2")
	default:
	}

	// Unknown session: receiver never hosted session 9.
	portGhost.Send(2, help)
	waitDemux(t, recv, func(st transport.DemuxStats) bool { return st.UnknownSession == 1 })

	// Completed-session replay: retire session 1, then resend.
	recv.RetireSession(1)
	portA.Send(2, help)
	st := waitDemux(t, recv, func(st transport.DemuxStats) bool { return st.StaleSession == 1 })
	if st.UnknownSession != 1 {
		t.Fatalf("unknown-session count drifted: %+v", st)
	}
	select {
	case <-sinkA.ch:
		t.Fatal("retired session still delivered")
	default:
	}
	if _, err := recv.RegisterSession(1, newSessionSink()); err == nil {
		t.Fatal("retired session was resurrected")
	}
}

// TestCrossSessionSpliceRejected: a valid frame captured from session
// A and re-addressed to session B without knowledge of the link
// secret fails the MAC check — the session identifier is inside the
// authenticated region.
func TestCrossSessionSpliceRejected(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("splice-secret")

	recv, err := transport.Listen(transport.Config{
		Self: 2, Listen: "127.0.0.1:0", Codec: codec, Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sinkA, sinkB := newSessionSink(), newSessionSink()
	if _, err := recv.RegisterSession(1, sinkA); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.RegisterSession(2, sinkB); err != nil {
		t.Fatal(err)
	}

	// Craft a valid session-1 frame the way the transport does.
	help := &vss.HelpMsg{Session: vss.SessionID{Dealer: 1, Tau: 1}}
	payload, err := help.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	seal := func(sid msg.SessionID) []byte {
		inner := []byte{byte(help.MsgType())}
		inner = binary.BigEndian.AppendUint64(inner, uint64(sid))
		inner = binary.BigEndian.AppendUint64(inner, 1) // from
		inner = binary.BigEndian.AppendUint64(inner, 2) // to
		inner = append(inner, payload...)
		mac := hmac.New(sha256.New, secret)
		mac.Write(inner)
		inner = mac.Sum(inner)
		out := binary.BigEndian.AppendUint32(nil, uint32(len(inner)))
		return append(out, inner...)
	}
	valid := seal(1)

	// Splice: flip the session field to 2, keep session 1's MAC.
	spliced := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(spliced[5:13], 2)

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(spliced); err != nil {
		t.Fatal(err)
	}
	waitDemux(t, recv, func(st transport.DemuxStats) bool { return st.BadFrame == 1 })
	select {
	case <-sinkB.ch:
		t.Fatal("spliced frame delivered to session 2")
	case <-sinkA.ch:
		t.Fatal("spliced frame delivered to session 1")
	default:
	}

	// The unmodified frame still authenticates on a fresh connection
	// (the transport hangs up after a bad frame).
	conn2, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(valid); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sinkA.ch:
	case <-time.After(10 * time.Second):
		t.Fatal("valid frame never delivered")
	}
}

// TestSessionTimersAndRecoverFanout: session ports namespace timer
// identifiers, and a recover signal reaches every live session.
func TestSessionTimersAndRecoverFanout(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	fired := make(chan [2]uint64, 8)
	mkSink := func(tag uint64) transport.Handler {
		return timerTagSink{tag: tag, ch: fired}
	}
	node, err := transport.Listen(transport.Config{
		Self: 1, Listen: "127.0.0.1:0", Codec: codec, Secret: []byte("s"),
		TimerUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	p1, err := node.RegisterSession(1, mkSink(1))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := node.RegisterSession(2, mkSink(2))
	if err != nil {
		t.Fatal(err)
	}
	p1.SetTimer(5, 10)
	p2.SetTimer(5, 10)
	seen := map[[2]uint64]bool{}
	for i := 0; i < 2; i++ {
		select {
		case f := <-fired:
			seen[f] = true
		case <-time.After(10 * time.Second):
			t.Fatal("session timer never fired")
		}
	}
	if !seen[[2]uint64{1, 5}] || !seen[[2]uint64{2, 5}] {
		t.Fatalf("timer fan-out wrong: %v", seen)
	}

	node.SignalRecover()
	for i := 0; i < 2; i++ {
		select {
		case f := <-fired:
			if f[1] != 999 {
				t.Fatalf("unexpected event %v", f)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("recover fan-out incomplete")
		}
	}
}

type timerTagSink struct {
	tag uint64
	ch  chan [2]uint64
}

func (s timerTagSink) HandleMessage(msg.NodeID, msg.Body) {}
func (s timerTagSink) HandleTimer(id uint64)              { s.ch <- [2]uint64{s.tag, id} }
func (s timerTagSink) HandleRecover()                     { s.ch <- [2]uint64{s.tag, 999} }

package transport_test

import (
	"testing"
	"time"

	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

// countSink counts deliveries.
type countSink struct{ ch chan struct{} }

func (s *countSink) HandleMessage(msg.NodeID, msg.Body) { s.ch <- struct{}{} }
func (s *countSink) HandleTimer(uint64)                 {}
func (s *countSink) HandleRecover()                     {}

// BenchmarkFrameRoundTrip measures the live encode→TCP→decode→dispatch
// path allocation footprint (the sync.Pool'd frame scratch buffers of
// sendSession/readFrame are the target; body marshal/unmarshal allocs
// are the protocol-determined floor).
func BenchmarkFrameRoundTrip(b *testing.B) {
	gr := group.Test256()
	codec := msg.NewCodec()
	if err := vss.RegisterCodec(codec, gr); err != nil {
		b.Fatal(err)
	}
	secret := []byte("bench-secret")
	mk := func(self msg.NodeID) *transport.Node {
		n, err := transport.Listen(transport.Config{
			Self: self, Listen: "127.0.0.1:0", Codec: codec, Secret: secret,
		})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	sender, recv := mk(1), mk(2)
	defer sender.Close()
	defer recv.Close()
	peers := []transport.Peer{{ID: 1, Addr: sender.Addr()}, {ID: 2, Addr: recv.Addr()}}
	sender.SetPeers(peers)
	recv.SetPeers(peers)
	sink := &countSink{ch: make(chan struct{}, 256)}
	port, err := sender.RegisterSession(1, newSessionSink())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := recv.RegisterSession(1, sink); err != nil {
		b.Fatal(err)
	}
	session := vss.SessionID{Dealer: 1, Tau: 1}
	body := &vss.RecShareMsg{Session: session, Share: big64(123456789)}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Send(2, body)
		select {
		case <-sink.ch:
		case <-time.After(10 * time.Second):
			b.Fatal("frame never arrived")
		}
	}
}

package transport_test

import (
	"bytes"
	"math/big"
	"testing"
	"time"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

// TestBatchFrameRoundTrip: a sealed batch frame decodes to the same
// bodies in the same order, and a v1 frame still decodes through the
// same entry point — the two formats coexist on one link.
func TestBatchFrameRoundTrip(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("batch-secret")
	session := vss.SessionID{Dealer: 3, Tau: 7}
	bodies := []msg.Body{
		&vss.HelpMsg{Session: session},
		&vss.RecShareMsg{Session: session, Share: big.NewInt(4242)},
		&dkg.HelpMsg{Tau: 7},
	}
	frame, err := transport.SealBatchFrame(secret, 9, 3, 1, bodies)
	if err != nil {
		t.Fatal(err)
	}
	sid, from, got, err := transport.DecodeFrameMulti(codec, secret, 1, frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if sid != 9 || from != 3 {
		t.Fatalf("routing header: sid=%d from=%d", sid, from)
	}
	if len(got) != len(bodies) {
		t.Fatalf("decoded %d bodies, want %d", len(got), len(bodies))
	}
	for i, b := range got {
		want, _ := bodies[i].MarshalBinary()
		back, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, back) {
			t.Fatalf("body %d not field-identical after round trip", i)
		}
	}

	v1, err := transport.SealFrame(secret, 9, 3, 1, bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	_, _, single, err := transport.DecodeFrameMulti(codec, secret, 1, v1[4:])
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 {
		t.Fatalf("v1 frame decoded to %d bodies", len(single))
	}
}

// TestBatchFrameSpliceRejected: the MAC covers the whole batch — no
// bit of the routing header, count, sub-headers or payloads can be
// altered, no envelope moved between frames, and no frame accepted by
// the wrong recipient or under the wrong secret.
func TestBatchFrameSpliceRejected(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("batch-secret")
	session := vss.SessionID{Dealer: 1, Tau: 1}
	bodies := []msg.Body{
		&vss.HelpMsg{Session: session},
		&vss.RecShareMsg{Session: session, Share: big.NewInt(5)},
	}
	frame, err := transport.SealBatchFrame(secret, 2, 1, 4, bodies)
	if err != nil {
		t.Fatal(err)
	}
	inner := frame[4:]

	// Every single-bit flip must be rejected.
	for i := range inner {
		mut := append([]byte(nil), inner...)
		mut[i] ^= 1
		if _, _, _, err := transport.DecodeFrameMulti(codec, secret, 4, mut); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Wrong recipient.
	if _, _, _, err := transport.DecodeFrameMulti(codec, secret, 3, inner); err == nil {
		t.Fatal("frame for node 4 accepted by node 3")
	}
	// Wrong secret.
	if _, _, _, err := transport.DecodeFrameMulti(codec, []byte("other"), 4, inner); err == nil {
		t.Fatal("frame authenticated under the wrong secret")
	}
	// Truncations.
	for cut := 1; cut < len(inner); cut += 7 {
		if _, _, _, err := transport.DecodeFrameMulti(codec, secret, 4, inner[:len(inner)-cut]); err == nil {
			t.Fatalf("truncated frame (-%d) accepted", cut)
		}
	}
	// Empty batch.
	empty, err := transport.SealBatchFrame(secret, 2, 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := transport.DecodeFrameMulti(codec, secret, 4, empty[4:]); err == nil {
		t.Fatal("empty batch frame accepted")
	}
}

// coalescePair starts a sender/receiver transport pair on localhost
// and returns the sender node plus the receiver's delivery channel.
func coalescePair(t *testing.T, coalesce bool) (*transport.Node, chan msg.Body) {
	t.Helper()
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("pair-secret")
	got := make(chan msg.Body, 256)
	recv, err := transport.Listen(transport.Config{
		Self:    2,
		Listen:  "127.0.0.1:0",
		Codec:   codec,
		Secret:  secret,
		Handler: &relay{inner: sinkHandler{ch: got}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err := transport.Listen(transport.Config{
		Self:     1,
		Listen:   "127.0.0.1:0",
		Peers:    []transport.Peer{{ID: 2, Addr: recv.Addr()}},
		Codec:    codec,
		Secret:   secret,
		Handler:  &relay{},
		Coalesce: coalesce,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return send, got
}

// TestCoalescedFramingDifferential: the same script of messages sent
// through a coalescing link and a per-message link is delivered
// field-identically and in the same order — coalescing changes the
// framing, never the transcript.
func TestCoalescedFramingDifferential(t *testing.T) {
	script := make([]msg.Body, 0, 40)
	for i := 0; i < 20; i++ {
		session := vss.SessionID{Dealer: 1, Tau: uint64(i)}
		script = append(script,
			&vss.HelpMsg{Session: session},
			&vss.RecShareMsg{Session: session, Share: big.NewInt(int64(1000 + i))},
		)
	}
	transcripts := make([][][]byte, 2)
	for mode, coalesce := range []bool{false, true} {
		send, got := coalescePair(t, coalesce)
		for _, body := range script {
			send.Send(2, body)
		}
		seen := make([][]byte, 0, len(script))
		deadline := time.After(20 * time.Second)
		for len(seen) < len(script) {
			select {
			case body := <-got:
				enc, err := body.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				seen = append(seen, append([]byte{byte(body.MsgType())}, enc...))
			case <-deadline:
				t.Fatalf("coalesce=%v: delivered %d/%d", coalesce, len(seen), len(script))
			}
		}
		transcripts[mode] = seen
	}
	for i := range transcripts[0] {
		if !bytes.Equal(transcripts[0][i], transcripts[1][i]) {
			t.Fatalf("transcripts diverge at message %d", i)
		}
	}
}

// TestCoalescedDKGOverTCP: a full DKG with every node coalescing (the
// wire-format-v2 default of dkgnode) completes with consistent
// results, and the send-side wire books balance: per-frame bytes can
// never undercount the envelopes they carried.
func TestCoalescedDKGOverTCP(t *testing.T) {
	const n, tt = 4, 1
	gr := group.Test256()
	codec := buildCodec(t, gr)
	dir, privs, err := harness.BuildDirectory(sig.Ed25519{}, n, 177)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("coalesced-cluster-secret")

	relays := make([]*relay, n+1)
	nodesT := make([]*transport.Node, n+1)
	peers := make([]transport.Peer, 0, n)
	for i := 1; i <= n; i++ {
		relays[i] = &relay{}
		tn, err := transport.Listen(transport.Config{
			Self:      msg.NodeID(i),
			Listen:    "127.0.0.1:0",
			Codec:     codec,
			Secret:    secret,
			Handler:   relays[i],
			TimerUnit: time.Microsecond * 200,
			Coalesce:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tn.Close()
		nodesT[i] = tn
		peers = append(peers, transport.Peer{ID: msg.NodeID(i), Addr: tn.Addr()})
	}
	for i := 1; i <= n; i++ {
		nodesT[i].SetPeers(peers)
	}

	dkgNodes := make([]*dkg.Node, n+1)
	completed := make(chan msg.NodeID, n)
	for i := 1; i <= n; i++ {
		id := msg.NodeID(i)
		params := dkg.Params{
			Group:          gr,
			N:              n,
			T:              tt,
			Directory:      dir,
			SignKey:        privs[id],
			TimeoutBase:    500_000,
			DedupDealings:  true,
			CompressedWire: true,
		}
		node, err := dkg.NewNode(params, 1, id, nodesT[i], dkg.Options{
			OnCompleted: func(dkg.CompletedEvent) { completed <- id },
		})
		if err != nil {
			t.Fatal(err)
		}
		dkgNodes[i] = node
		relays[i].inner = dkgHandler{node: node}
	}
	for i := 1; i <= n; i++ {
		node, tn, seed := dkgNodes[i], nodesT[i], uint64(2000+i)
		tn.Do(func() {
			if err := node.Start(randutil.NewReader(seed)); err != nil {
				t.Errorf("start: %v", err)
			}
		})
	}

	deadline := time.After(30 * time.Second)
	for got := 0; got < n; {
		select {
		case <-completed:
			got++
		case <-deadline:
			t.Fatalf("timeout: %d/%d nodes completed", got, n)
		}
	}
	ref := dkgNodes[1].Result()
	for i := 2; i <= n; i++ {
		res := dkgNodes[i].Result()
		if !res.PublicKey.Equal(ref.PublicKey) {
			t.Fatalf("node %d public key differs", i)
		}
		if !res.V.VerifyShare(int64(i), res.Share) {
			t.Fatalf("node %d share invalid", i)
		}
	}
	for i := 1; i <= n; i++ {
		ws := nodesT[i].WireStats()
		if ws.Frames == 0 || ws.FrameBytes == 0 {
			t.Fatalf("node %d: empty wire books: %+v", i, ws)
		}
		var msgs int
		var envBytes int64
		for typ, c := range ws.MsgCount {
			msgs += c
			envBytes += ws.MsgBytes[typ]
		}
		if ws.Frames > msgs {
			t.Fatalf("node %d: more frames (%d) than envelopes (%d)", i, ws.Frames, msgs)
		}
		if ws.FrameBytes < envBytes {
			t.Fatalf("node %d: frame bytes %d < envelope bytes %d", i, ws.FrameBytes, envBytes)
		}
		if len(ws.SessionBytes) == 0 {
			t.Fatalf("node %d: no per-session byte counters", i)
		}
	}
}

// TestMixedFormatCluster: one node on the legacy per-message wire
// format interoperates with three coalescing v2 nodes — the DKG
// completes and all four agree. This is the rolling-upgrade story the
// -wire-v1 flag of dkgnode supports.
func TestMixedFormatCluster(t *testing.T) {
	const n, tt = 4, 1
	gr := group.Test256()
	codec := buildCodec(t, gr)
	dir, privs, err := harness.BuildDirectory(sig.Ed25519{}, n, 277)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("mixed-cluster-secret")

	relays := make([]*relay, n+1)
	nodesT := make([]*transport.Node, n+1)
	peers := make([]transport.Peer, 0, n)
	for i := 1; i <= n; i++ {
		relays[i] = &relay{}
		tn, err := transport.Listen(transport.Config{
			Self:      msg.NodeID(i),
			Listen:    "127.0.0.1:0",
			Codec:     codec,
			Secret:    secret,
			Handler:   relays[i],
			TimerUnit: time.Microsecond * 200,
			Coalesce:  i != 1, // node 1 stays on wire format v1
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tn.Close()
		nodesT[i] = tn
		peers = append(peers, transport.Peer{ID: msg.NodeID(i), Addr: tn.Addr()})
	}
	for i := 1; i <= n; i++ {
		nodesT[i].SetPeers(peers)
	}

	dkgNodes := make([]*dkg.Node, n+1)
	completed := make(chan msg.NodeID, n)
	for i := 1; i <= n; i++ {
		id := msg.NodeID(i)
		params := dkg.Params{
			Group:       gr,
			N:           n,
			T:           tt,
			Directory:   dir,
			SignKey:     privs[id],
			TimeoutBase: 500_000,
		}
		if i != 1 {
			// v2 nodes also dedup and compress; node 1 sends classic
			// full dealings. Receivers on both sides accept both.
			params.DedupDealings = true
			params.CompressedWire = true
		}
		node, err := dkg.NewNode(params, 1, id, nodesT[i], dkg.Options{
			OnCompleted: func(dkg.CompletedEvent) { completed <- id },
		})
		if err != nil {
			t.Fatal(err)
		}
		dkgNodes[i] = node
		relays[i].inner = dkgHandler{node: node}
	}
	for i := 1; i <= n; i++ {
		node, tn, seed := dkgNodes[i], nodesT[i], uint64(3000+i)
		tn.Do(func() {
			if err := node.Start(randutil.NewReader(seed)); err != nil {
				t.Errorf("start: %v", err)
			}
		})
	}

	deadline := time.After(30 * time.Second)
	for got := 0; got < n; {
		select {
		case <-completed:
			got++
		case <-deadline:
			t.Fatalf("timeout: %d/%d nodes completed", got, n)
		}
	}
	ref := dkgNodes[1].Result()
	for i := 2; i <= n; i++ {
		res := dkgNodes[i].Result()
		if !res.PublicKey.Equal(ref.PublicKey) {
			t.Fatalf("node %d public key differs", i)
		}
		if !res.V.VerifyShare(int64(i), res.Share) {
			t.Fatalf("node %d share invalid", i)
		}
	}
	if ws := nodesT[1].WireStats(); ws.Frames == 0 {
		t.Fatal("v1 node recorded no frames")
	}
}

// TestCoalesceRetryDeliversAcrossStartupRace: a batch frame sent while
// the peer's listener is not yet up — the cluster-start race — must
// survive on the retry backlog and arrive once the peer appears. This
// matters more under coalescing than it did for v1 frames: one batch
// can carry the dealer's send plus the first echoes, so dropping it
// loses a burst of protocol state the push-based flow never resends.
func TestCoalesceRetryDeliversAcrossStartupRace(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("retry-secret")

	// Reserve an address for the late receiver, then free it so the
	// sender's first flushes fail with connection-refused.
	probe, err := transport.Listen(transport.Config{
		Self: 2, Listen: "127.0.0.1:0", Codec: codec, Secret: secret, Handler: &relay{},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	send, err := transport.Listen(transport.Config{
		Self:     1,
		Listen:   "127.0.0.1:0",
		Peers:    []transport.Peer{{ID: 2, Addr: addr}},
		Codec:    codec,
		Secret:   secret,
		Handler:  &relay{},
		Coalesce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })

	session := vss.SessionID{Dealer: 1, Tau: 1}
	for i := 0; i < 3; i++ {
		send.Send(2, &vss.RecShareMsg{Session: session, Share: big.NewInt(int64(100 + i))})
	}

	// Let at least one flush attempt fail before the receiver exists.
	time.Sleep(50 * time.Millisecond)

	got := make(chan msg.Body, 16)
	recv, err := transport.Listen(transport.Config{
		Self:    2,
		Listen:  addr,
		Codec:   codec,
		Secret:  secret,
		Handler: &relay{inner: sinkHandler{ch: got}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	deadline := time.After(20 * time.Second)
	for seen := 0; seen < 3; {
		select {
		case <-got:
			seen++
		case <-deadline:
			t.Fatalf("retry backlog never delivered: %d/3 messages", seen)
		}
	}
}

package transport

import (
	"math/big"
	"testing"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/vss"
)

func fuzzCodec(tb testing.TB) *msg.Codec {
	tb.Helper()
	c := msg.NewCodec()
	if err := vss.RegisterCodec(c, group.Test256()); err != nil {
		tb.Fatal(err)
	}
	if err := dkg.RegisterCodec(c); err != nil {
		tb.Fatal(err)
	}
	return c
}

// FuzzDecodeFrame hardens the inbound wire path: DecodeFrame sees the
// exact untrusted bytes the read loop hands it (everything after the
// length prefix) and must never panic — and must never accept a frame
// whose MAC does not verify under the link secret.
func FuzzDecodeFrame(f *testing.F) {
	secret := []byte("fuzz-link-secret")
	session := vss.SessionID{Dealer: 1, Tau: 2}
	for _, body := range []msg.Body{
		&vss.HelpMsg{Session: session},
		&vss.RecShareMsg{Session: session, Share: big.NewInt(77)},
		&dkg.HelpMsg{Tau: 2},
	} {
		framed, err := SealFrame(secret, 9, 3, 1, body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(framed[4:]) // strip the length prefix, as readFrame does
	}
	f.Add([]byte{})
	codec := fuzzCodec(f)
	f.Fuzz(func(t *testing.T, inner []byte) {
		sid, from, body, err := DecodeFrame(codec, secret, 1, inner)
		if err != nil {
			return
		}
		if body == nil {
			t.Fatal("accepted frame with nil body")
		}
		// An accepted frame re-seals to the identical inner bytes:
		// acceptance implies the MAC verified over exactly this
		// routing header and payload.
		reframed, err := SealFrame(secret, sid, from, 1, body)
		if err != nil {
			t.Fatalf("re-seal of accepted frame failed: %v", err)
		}
		_ = reframed
	})
}

// FuzzDecodeFrameWrongSecret: no input may ever authenticate under a
// different link secret (the splice-resistance property).
func FuzzDecodeFrameWrongSecret(f *testing.F) {
	secret := []byte("fuzz-link-secret")
	other := []byte("some-other-secret")
	framed, err := SealFrame(secret, 9, 3, 1, &dkg.HelpMsg{Tau: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(framed[4:])
	codec := fuzzCodec(f)
	f.Fuzz(func(t *testing.T, inner []byte) {
		if _, _, _, err := DecodeFrame(codec, other, 1, inner); err == nil {
			// The fuzzer cannot forge HMAC-SHA256; any acceptance
			// under the wrong key is a decoder bug.
			t.Fatal("frame authenticated under the wrong secret")
		}
	})
}

// FuzzDecodeFrameMulti hardens the dual-format inbound path: both v1
// frames and 0x80 batch frames arrive here, and no input may panic,
// yield a nil body, or authenticate without the link secret's MAC.
func FuzzDecodeFrameMulti(f *testing.F) {
	secret := []byte("fuzz-link-secret")
	session := vss.SessionID{Dealer: 1, Tau: 2}
	batch, err := SealBatchFrame(secret, 9, 3, 1, []msg.Body{
		&vss.HelpMsg{Session: session},
		&vss.RecShareMsg{Session: session, Share: big.NewInt(77)},
		&dkg.HelpMsg{Tau: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch[4:])
	single, err := SealFrame(secret, 9, 3, 1, &dkg.HelpMsg{Tau: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(single[4:])
	f.Add([]byte{batchMarker})
	f.Add([]byte{})
	codec := fuzzCodec(f)
	other := []byte("some-other-secret")
	f.Fuzz(func(t *testing.T, inner []byte) {
		_, _, bodies, err := DecodeFrameMulti(codec, secret, 1, inner)
		if err == nil {
			if len(bodies) == 0 {
				t.Fatal("accepted frame with no bodies")
			}
			for _, b := range bodies {
				if b == nil {
					t.Fatal("accepted frame with nil body")
				}
			}
		}
		if _, _, _, err := DecodeFrameMulti(codec, other, 1, inner); err == nil {
			t.Fatal("frame authenticated under the wrong secret")
		}
	})
}

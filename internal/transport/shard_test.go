package transport_test

import (
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

func big64(v int64) *big.Int { return big.NewInt(v) }

// orderSink records per-session delivery order and which goroutine
// delivered, to pin the lane guarantees: per-session serial dispatch
// in order, sessions decoupled from each other.
type orderSink struct {
	mu       sync.Mutex
	alphas   []int64
	inFlight atomic.Int32
	maxConc  atomic.Int32
	block    chan struct{} // non-nil: handler parks until closed
}

func (s *orderSink) HandleMessage(_ msg.NodeID, body msg.Body) {
	cur := s.inFlight.Add(1)
	for {
		old := s.maxConc.Load()
		if cur <= old || s.maxConc.CompareAndSwap(old, cur) {
			break
		}
	}
	if s.block != nil {
		<-s.block
	}
	if m, ok := body.(*vss.RecShareMsg); ok {
		s.mu.Lock()
		s.alphas = append(s.alphas, m.Share.Int64())
		s.mu.Unlock()
	}
	s.inFlight.Add(-1)
}
func (s *orderSink) HandleTimer(uint64) {}
func (s *orderSink) HandleRecover()     {}

func (s *orderSink) recorded() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.alphas))
	copy(out, s.alphas)
	return out
}

func shardPair(t *testing.T, shard bool) (*transport.Node, *transport.Node) {
	t.Helper()
	gr := group.Test256()
	codec := buildCodec(t, gr)
	secret := []byte("shard-test-secret")
	mk := func(self msg.NodeID) *transport.Node {
		n, err := transport.Listen(transport.Config{
			Self: self, Listen: "127.0.0.1:0", Codec: codec, Secret: secret,
			ShardSessions: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a, b := mk(1), mk(2)
	peers := []transport.Peer{{ID: 1, Addr: a.Addr()}, {ID: 2, Addr: b.Addr()}}
	a.SetPeers(peers)
	b.SetPeers(peers)
	return a, b
}

// TestShardedSessionOrdering: with lanes on, each session's frames are
// delivered in send order even while another session's handler is
// blocked — sessions no longer share one dispatch thread.
func TestShardedSessionOrdering(t *testing.T) {
	sender, recv := shardPair(t, true)

	slow := &orderSink{block: make(chan struct{})}
	fast := &orderSink{}
	if _, err := recv.RegisterSession(1, slow); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.RegisterSession(2, fast); err != nil {
		t.Fatal(err)
	}
	port1, err := sender.RegisterSession(1, newSessionSink())
	if err != nil {
		t.Fatal(err)
	}
	port2, err := sender.RegisterSession(2, newSessionSink())
	if err != nil {
		t.Fatal(err)
	}

	session := vss.SessionID{Dealer: 1, Tau: 1}
	const k = 20
	for i := 0; i < k; i++ {
		port1.Send(2, &vss.RecShareMsg{Session: session, Share: big64(int64(i))})
		port2.Send(2, &vss.RecShareMsg{Session: session, Share: big64(int64(i))})
	}
	// Session 2 must drain completely while session 1's lane is parked
	// on its first frame.
	deadline := time.Now().Add(10 * time.Second)
	for len(fast.recorded()) < k {
		if time.Now().After(deadline) {
			t.Fatalf("session 2 starved behind blocked session 1: got %d/%d", len(fast.recorded()), k)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(slow.recorded()); got != 0 {
		t.Fatalf("blocked lane recorded %d frames", got)
	}
	close(slow.block)
	for len(slow.recorded()) < k {
		if time.Now().After(deadline) {
			t.Fatalf("session 1 never drained: got %d/%d", len(slow.recorded()), k)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, s := range [](*orderSink){slow, fast} {
		rec := s.recorded()
		for i, v := range rec {
			if v != int64(i) {
				t.Fatalf("per-session order violated: %v", rec)
			}
		}
		if s.maxConc.Load() > 1 {
			t.Fatalf("one session's handler ran on %d goroutines concurrently", s.maxConc.Load())
		}
	}
}

// TestShardedLanesNoGoroutineLeak: lanes die with their session
// (retire) and with the node (close).
func TestShardedLanesNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		gr := group.Test256()
		codec := buildCodec(t, gr)
		n, err := transport.Listen(transport.Config{
			Self: 1, Listen: "127.0.0.1:0", Codec: codec, Secret: []byte("s"),
			ShardSessions: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for sid := msg.SessionID(1); sid <= 16; sid++ {
			if _, err := n.RegisterSession(sid, newSessionSink()); err != nil {
				t.Fatal(err)
			}
		}
		for sid := msg.SessionID(1); sid <= 8; sid++ {
			n.RetireSession(sid) // half retired explicitly, half closed with the node
		}
		n.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("lane goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

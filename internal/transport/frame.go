package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge is returned when a length-prefixed frame exceeds
// the reader's limit.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// WriteLengthPrefixed writes one u32(big-endian)-length-prefixed frame.
// It is the framing shared by the peer transport and the data-plane
// client protocol: every stream message is `u32 len ‖ len bytes`.
func WriteLengthPrefixed(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadLengthPrefixed reads one u32-length-prefixed frame, rejecting
// frames larger than max bytes before reading their body (so a
// malformed or hostile peer cannot force a large allocation).
func ReadLengthPrefixed(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

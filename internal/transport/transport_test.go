package transport_test

import (
	"testing"
	"time"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/groupmod"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/rbc"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

// buildCodec registers every protocol decoder (what cmd/dkgnode does).
func buildCodec(t *testing.T, gr *group.Group) *msg.Codec {
	t.Helper()
	codec := msg.NewCodec()
	if err := vss.RegisterCodec(codec, gr); err != nil {
		t.Fatal(err)
	}
	if err := dkg.RegisterCodec(codec); err != nil {
		t.Fatal(err)
	}
	if err := rbc.RegisterCodec(codec); err != nil {
		t.Fatal(err)
	}
	if err := proactive.RegisterCodec(codec); err != nil {
		t.Fatal(err)
	}
	if err := groupmod.RegisterCodec(codec, gr); err != nil {
		t.Fatal(err)
	}
	return codec
}

// relay defers handler installation so transport nodes can start
// before the protocol nodes exist.
type relay struct {
	inner transport.Handler
}

func (r *relay) HandleMessage(from msg.NodeID, body msg.Body) {
	if r.inner != nil {
		r.inner.HandleMessage(from, body)
	}
}
func (r *relay) HandleTimer(id uint64) {
	if r.inner != nil {
		r.inner.HandleTimer(id)
	}
}
func (r *relay) HandleRecover() {
	if r.inner != nil {
		r.inner.HandleRecover()
	}
}

type dkgHandler struct{ node *dkg.Node }

func (h dkgHandler) HandleMessage(from msg.NodeID, body msg.Body) { h.node.Handle(from, body) }
func (h dkgHandler) HandleTimer(id uint64)                        { h.node.HandleTimer(id) }
func (h dkgHandler) HandleRecover()                               { h.node.HandleRecover() }

// TestDKGOverTCP runs a full 4-node DKG over real localhost TCP
// connections — the same state machines the simulator drives, behind
// the transport event loop.
func TestDKGOverTCP(t *testing.T) {
	const n, tt = 4, 1
	gr := group.Test256()
	codec := buildCodec(t, gr)
	dir, privs, err := harness.BuildDirectory(sig.Ed25519{}, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("cluster-shared-transport-secret")

	// Start transports on ephemeral ports, then exchange addresses.
	relays := make([]*relay, n+1)
	nodesT := make([]*transport.Node, n+1)
	peers := make([]transport.Peer, 0, n)
	for i := 1; i <= n; i++ {
		relays[i] = &relay{}
		tn, err := transport.Listen(transport.Config{
			Self:      msg.NodeID(i),
			Listen:    "127.0.0.1:0",
			Codec:     codec,
			Secret:    secret,
			Handler:   relays[i],
			TimerUnit: time.Microsecond * 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tn.Close()
		nodesT[i] = tn
		peers = append(peers, transport.Peer{ID: msg.NodeID(i), Addr: tn.Addr()})
	}
	for i := 1; i <= n; i++ {
		nodesT[i].SetPeers(peers)
	}

	// Protocol nodes on top.
	dkgNodes := make([]*dkg.Node, n+1)
	completed := make(chan msg.NodeID, n)
	for i := 1; i <= n; i++ {
		id := msg.NodeID(i)
		params := dkg.Params{
			Group:       gr,
			N:           n,
			T:           tt,
			Directory:   dir,
			SignKey:     privs[id],
			TimeoutBase: 500_000, // generous: no leader change expected
		}
		node, err := dkg.NewNode(params, 1, id, nodesT[i], dkg.Options{
			OnCompleted: func(dkg.CompletedEvent) { completed <- id },
		})
		if err != nil {
			t.Fatal(err)
		}
		dkgNodes[i] = node
		relays[i].inner = dkgHandler{node: node}
	}
	for i := 1; i <= n; i++ {
		node, tn, seed := dkgNodes[i], nodesT[i], uint64(1000+i)
		tn.Do(func() {
			if err := node.Start(randutil.NewReader(seed)); err != nil {
				t.Errorf("start: %v", err)
			}
		})
	}

	deadline := time.After(30 * time.Second)
	for got := 0; got < n; {
		select {
		case <-completed:
			got++
		case <-deadline:
			t.Fatalf("timeout: %d/%d nodes completed", got, n)
		}
	}
	// Consistency across processes-over-TCP.
	ref := dkgNodes[1].Result()
	for i := 2; i <= n; i++ {
		res := dkgNodes[i].Result()
		if !res.PublicKey.Equal(ref.PublicKey) {
			t.Fatalf("node %d public key differs", i)
		}
		if !res.V.VerifyShare(int64(i), res.Share) {
			t.Fatalf("node %d share invalid", i)
		}
	}
}

// TestFrameAuthentication: frames with a wrong MAC secret are dropped.
func TestFrameAuthentication(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	got := make(chan msg.Body, 4)
	sink := &relay{inner: sinkHandler{ch: got}}
	recv, err := transport.Listen(transport.Config{
		Self:    2,
		Listen:  "127.0.0.1:0",
		Codec:   codec,
		Secret:  []byte("right-secret"),
		Handler: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	peers := []transport.Peer{{ID: 2, Addr: recv.Addr()}}

	evil, err := transport.Listen(transport.Config{
		Self:    1,
		Listen:  "127.0.0.1:0",
		Peers:   peers,
		Codec:   codec,
		Secret:  []byte("wrong-secret"),
		Handler: &relay{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	good, err := transport.Listen(transport.Config{
		Self:    3,
		Listen:  "127.0.0.1:0",
		Peers:   peers,
		Codec:   codec,
		Secret:  []byte("right-secret"),
		Handler: &relay{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	evil.Send(2, &vss.HelpMsg{Session: vss.SessionID{Dealer: 1, Tau: 1}})
	good.Send(2, &vss.HelpMsg{Session: vss.SessionID{Dealer: 1, Tau: 1}})

	select {
	case body := <-got:
		if _, ok := body.(*vss.HelpMsg); !ok {
			t.Fatalf("unexpected body %T", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("authenticated frame never arrived")
	}
	select {
	case <-got:
		t.Fatal("forged frame was delivered")
	case <-time.After(300 * time.Millisecond):
	}
}

type sinkHandler struct{ ch chan msg.Body }

func (s sinkHandler) HandleMessage(_ msg.NodeID, body msg.Body) { s.ch <- body }
func (s sinkHandler) HandleTimer(uint64)                        {}
func (s sinkHandler) HandleRecover()                            {}

// TestTimerService: timers fire through the event loop and can be
// cancelled.
func TestTimerService(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	fired := make(chan uint64, 4)
	node, err := transport.Listen(transport.Config{
		Self:      1,
		Listen:    "127.0.0.1:0",
		Codec:     codec,
		Secret:    []byte("s"),
		Handler:   &relay{inner: timerSink{ch: fired}},
		TimerUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.SetTimer(1, 10)
	node.SetTimer(2, 5000)
	node.StopTimer(2)
	select {
	case id := <-fired:
		if id != 1 {
			t.Fatalf("fired %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	select {
	case id := <-fired:
		t.Fatalf("cancelled timer %d fired", id)
	case <-time.After(100 * time.Millisecond):
	}
	// Recover signal round-trips.
	node.SignalRecover()
	select {
	case id := <-fired:
		if id != 999 {
			t.Fatalf("unexpected event %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recover signal lost")
	}
}

type timerSink struct{ ch chan uint64 }

func (s timerSink) HandleMessage(msg.NodeID, msg.Body) {}
func (s timerSink) HandleTimer(id uint64)              { s.ch <- id }
func (s timerSink) HandleRecover()                     { s.ch <- 999 }

// TestListenErrors: invalid configs are rejected.
func TestListenErrors(t *testing.T) {
	gr := group.Test256()
	codec := buildCodec(t, gr)
	if _, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0"}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := transport.Listen(transport.Config{
		Self: 1, Listen: "256.256.256.256:1", Codec: codec,
		Secret: []byte("s"), Handler: &relay{},
	}); err == nil {
		t.Error("bad listen address accepted")
	}
}

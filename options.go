package hybriddkg

import (
	"fmt"

	"hybriddkg/internal/msg"
)

// Roster describes the group: n participants, of which at most T are
// Byzantine and at most F are crashed at any time; n ≥ 3t + 2f + 1
// must hold (the hybrid-model resilience bound, §2.2).
type Roster struct {
	N, T, F int
}

func (r Roster) validate() error {
	if r.N < 1 || r.N < 3*r.T+2*r.F+1 {
		return fmt.Errorf("%w: n=%d t=%d f=%d violates n ≥ 3t+2f+1", ErrBadOptions, r.N, r.T, r.F)
	}
	return nil
}

// netConfig is the resolved network configuration. Every knob that
// used to be a protocol-layer struct field (dkg.Params toggles, engine
// config, data-plane admission settings) is set through an Option so
// callers compose behaviour instead of wiring internals.
type netConfig struct {
	groupName string
	sigScheme string
	seed      uint64

	// Control-plane (DKG) toggles.
	hashedEcho     bool
	dedupDealings  bool
	compressedWire bool
	certificates   bool
	disableBatch   bool
	legacyWire     bool
	verifyWorkers  int
	verdictEntries int

	// Data-plane (serving) knobs.
	rate        float64
	burst       int
	maxPending  int
	maxBatch    int
	nonceTarget int
	beaconAhead int
}

func defaultNetConfig() netConfig {
	return netConfig{
		groupName: "test256",
		sigScheme: "ed25519",
		seed:      1,
	}
}

// Option configures a Network.
type Option func(*netConfig)

// WithGroup selects the group backend and parameter set: "toy64",
// "test256" (default), "test512", "prod2048" (all Z_p*) or "p256"
// (NIST P-256; ~128-bit security with commitment operations an order
// of magnitude cheaper than prod2048).
func WithGroup(name string) Option {
	return func(c *netConfig) { c.groupName = name }
}

// WithSignatureScheme selects message authentication: "ed25519"
// (default), "schnorr-test256", "schnorr-prod2048" or "null".
func WithSignatureScheme(name string) Option {
	return func(c *netConfig) { c.sigScheme = name }
}

// WithSeed makes the whole deployment deterministic (scheduling and
// key material). The default 1 is fine for demos; real deployments
// use cmd/dkgnode, not this simulator.
func WithSeed(seed uint64) Option {
	return func(c *netConfig) {
		if seed != 0 {
			c.seed = seed
		}
	}
}

// WithHashedEcho enables the O(κn³) commitment-hash optimisation on
// every embedded VSS instance (§4.4).
func WithHashedEcho() Option {
	return func(c *netConfig) { c.hashedEcho = true }
}

// WithDedupDealings makes VSS instances reference commitment matrices
// by digest after the dealer's send, with pull-based fetch for nodes
// that missed the full copy.
func WithDedupDealings() Option {
	return func(c *netConfig) { c.dedupDealings = true }
}

// WithCompressedWire selects the wire-format-v2 commitment encoding
// (compressed group elements) on every matrix the protocol emits.
func WithCompressedWire() Option {
	return func(c *netConfig) { c.compressedWire = true }
}

// WithLegacyWireV1 sends the legacy wire format v1: no frame
// coalescing, no compressed or dedup'd commitments. v2 frames are
// still decoded. Only meaningful for TCP deployments (Serve).
func WithLegacyWireV1() Option {
	return func(c *netConfig) {
		c.legacyWire = true
		c.dedupDealings = false
		c.compressedWire = false
	}
}

// WithCertificates replaces the quadratic all-to-all echo/ready
// floods — in both the DKG layer and every embedded VSS instance —
// with relay-assembled quorum certificates over committee-sampled
// signer sets: per-quorum message complexity drops from Θ(n²) to
// O(n·polylog n), and each receiver verifies a whole certificate in
// one batched multi-exponentiation. If no certificate arrives before
// the view-timeout base the node falls back to the classic flood
// path, so liveness never depends on the sampled relays. Most
// effective at large n with a small fixed dealer set (the Any-Trust
// regime); at small n the committees cover the whole roster and the
// certificate path only changes message shape.
func WithCertificates() Option {
	return func(c *netConfig) { c.certificates = true }
}

// WithoutBatchVerify turns off batched point verification in the
// commitment hot path (batching is on by default; disabling it is
// mainly useful for differential testing).
func WithoutBatchVerify() Option {
	return func(c *netConfig) { c.disableBatch = true }
}

// WithParallelVerify runs commitment verification on a shared worker
// pool of the given size, and memoizes point verdicts across sessions
// in a shared cache. workers ≤ 0 sizes the pool to GOMAXPROCS.
func WithParallelVerify(workers int) Option {
	return func(c *netConfig) {
		c.verifyWorkers = workers
		if c.verifyWorkers <= 0 {
			c.verifyWorkers = -1 // resolved to GOMAXPROCS at build time
		}
		if c.verdictEntries == 0 {
			c.verdictEntries = -1 // pool implies a default-sized verdict cache
		}
	}
}

// WithVerdictCache memoizes commitment-point verdicts across sessions
// in a cache bounded to the given number of entries (0 entries means
// the implementation default).
func WithVerdictCache(entries int) Option {
	return func(c *netConfig) {
		c.verdictEntries = entries
		if c.verdictEntries <= 0 {
			c.verdictEntries = -1
		}
	}
}

// WithAdmission configures per-key admission control on every node's
// data-plane service: a token bucket of rate requests/second with the
// given burst, and a bound on queued+in-flight requests beyond which
// new ones are shed with ErrOverloaded. rate 0 disables the bucket.
func WithAdmission(rate float64, burst, maxPending int) Option {
	return func(c *netConfig) {
		c.rate = rate
		c.burst = burst
		c.maxPending = maxPending
	}
}

// WithBatchWindow sets the data-plane batching watermark: enqueueing
// the n-th same-key request flushes the coalesced batch immediately
// (default 8).
func WithBatchWindow(n int) Option {
	return func(c *netConfig) { c.maxBatch = n }
}

// WithNonceReservoir sets how many pre-generated signing nonces each
// key keeps in reserve (default 2). Larger reservoirs absorb bigger
// request bursts without waiting on auxiliary DKGs.
func WithNonceReservoir(target int) Option {
	return func(c *netConfig) { c.nonceTarget = target }
}

// WithBeaconAhead sets the beacon look-ahead window: how many rounds
// past the highest requested one are provisioned eagerly (default 2).
func WithBeaconAhead(rounds int) Option {
	return func(c *netConfig) { c.beaconAhead = rounds }
}

// keyConfig is the resolved per-key configuration.
type keyConfig struct {
	aggregator msg.NodeID
	eager      bool
}

// KeyOption configures one generated key.
type KeyOption func(*keyConfig)

// WithAggregator pins the node that aggregates this key's requests
// (default: the lowest-numbered live node).
func WithAggregator(id NodeID) KeyOption {
	return func(c *keyConfig) { c.aggregator = id }
}

// WithEagerServing activates the key on its aggregator immediately,
// provisioning the nonce reservoir before the first request arrives.
func WithEagerServing() KeyOption {
	return func(c *keyConfig) { c.eager = true }
}

// Differential tests for wire format v2: compressed commitment
// encodings and coalesced framing must change how bytes look on the
// wire — and nothing else. Each test runs the same seeded cluster
// twice, taps every message at the simulator boundary, pushes it
// through the real wire codec, and demands the canonicalized
// transcripts be field-identical.
package hybriddkg_test

import (
	"bytes"
	"testing"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/rbc"
	"hybriddkg/internal/simnet"
	"hybriddkg/internal/vss"
)

// wireTap canonicalizes every message crossing the simulated wire:
// marshal with the run's encoding, decode through the registered
// codec, re-marshal the decoded body (which always re-encodes in the
// baseline v1 form). Two runs whose canonical transcripts match have
// exchanged field-identical protocol content, whatever bytes each put
// on the wire.
type wireTap struct {
	codec    *msg.Codec
	canon    [][]byte
	rawBytes int64
	errs     int
}

func newWireTap(t *testing.T, gr *group.Group) *wireTap {
	t.Helper()
	codec := msg.NewCodec()
	if err := vss.RegisterCodec(codec, gr); err != nil {
		t.Fatal(err)
	}
	if err := dkg.RegisterCodec(codec); err != nil {
		t.Fatal(err)
	}
	if err := rbc.RegisterCodec(codec); err != nil {
		t.Fatal(err)
	}
	return &wireTap{codec: codec}
}

func (w *wireTap) filter(from, to msg.NodeID, body msg.Body) simnet.Verdict {
	enc, err := body.MarshalBinary()
	if err != nil {
		w.errs++
		return simnet.Verdict{}
	}
	w.rawBytes += int64(len(enc))
	dec, err := w.codec.Decode(body.MsgType(), enc)
	if err != nil {
		w.errs++
		return simnet.Verdict{}
	}
	canon, err := dec.MarshalBinary()
	if err != nil {
		w.errs++
		return simnet.Verdict{}
	}
	rec := make([]byte, 0, len(canon)+17)
	rec = append(rec, byte(from), byte(to), byte(body.MsgType()))
	rec = append(rec, canon...)
	w.canon = append(w.canon, rec)
	return simnet.Verdict{}
}

func runTapped(t *testing.T, opts harness.DKGOptions, tap *wireTap) *harness.DKGResult {
	t.Helper()
	opts.Filter = tap.filter
	res, err := harness.RunDKG(opts)
	if err != nil {
		t.Fatal(err)
	}
	if tap.errs != 0 {
		t.Fatalf("%d messages failed to round-trip through the codec", tap.errs)
	}
	if res.HonestDone() != opts.N-len(opts.Byzantine) {
		t.Fatalf("completed %d honest nodes", res.HonestDone())
	}
	if err := res.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return res
}

func compareTranscripts(t *testing.T, plain, compressed *wireTap) {
	t.Helper()
	if len(plain.canon) != len(compressed.canon) {
		t.Fatalf("message counts diverge: %d vs %d", len(plain.canon), len(compressed.canon))
	}
	for i := range plain.canon {
		if !bytes.Equal(plain.canon[i], compressed.canon[i]) {
			t.Fatalf("canonical transcripts diverge at message %d (type %d)",
				i, plain.canon[i][2])
		}
	}
	if compressed.rawBytes >= plain.rawBytes {
		t.Fatalf("compressed run put %d raw bytes on the wire, uncompressed %d — no saving",
			compressed.rawBytes, plain.rawBytes)
	}
}

// TestCompressedWireTranscriptIdentity: on the curve backend the
// compressed run moves strictly fewer raw bytes yet every decoded
// message is field-identical to the uncompressed run's.
func TestCompressedWireTranscriptIdentity(t *testing.T) {
	gr, err := group.ByName("p256")
	if err != nil {
		t.Fatal(err)
	}
	base := harness.DKGOptions{N: 7, T: 2, Seed: 31, Group: gr}
	plainTap := newWireTap(t, gr)
	plain := runTapped(t, base, plainTap)
	compTap := newWireTap(t, gr)
	base.CompressedWire = true
	comp := runTapped(t, base, compTap)
	compareTranscripts(t, plainTap, compTap)
	// Outcomes match too: same public key either way.
	var pk1, pk2 group.Element
	for id := range plain.Completed {
		pk1 = plain.Completed[id].PublicKey
		break
	}
	for id := range comp.Completed {
		pk2 = comp.Completed[id].PublicKey
		break
	}
	if !pk1.Equal(pk2) {
		t.Fatal("compressed and uncompressed runs derived different keys")
	}
}

// replayer is the byzantine-splice adversary: every message it
// receives is forwarded verbatim to its neighbour, replaying valid
// envelopes out of context. Honest nodes must shrug this off
// identically under both encodings.
type replayer struct {
	env  *simnet.Env
	self msg.NodeID
	n    int
}

func (r *replayer) HandleMessage(from msg.NodeID, body msg.Body) {
	next := msg.NodeID(int(r.self)%r.n + 1)
	if next == r.self {
		next = 1
	}
	r.env.Send(next, body)
}
func (r *replayer) HandleTimer(uint64) {}
func (r *replayer) HandleRecover()     {}

// TestCompressedWireTranscriptIdentityByzantine: the transcript
// identity survives an adversary that splices captured messages back
// into the cluster.
func TestCompressedWireTranscriptIdentityByzantine(t *testing.T) {
	gr, err := group.ByName("p256")
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	byz := map[msg.NodeID]func(env *simnet.Env) simnet.Handler{
		5: func(env *simnet.Env) simnet.Handler {
			return &replayer{env: env, self: 5, n: n}
		},
	}
	base := harness.DKGOptions{N: n, T: 2, Seed: 37, Group: gr, Byzantine: byz}
	plainTap := newWireTap(t, gr)
	runTapped(t, base, plainTap)
	compTap := newWireTap(t, gr)
	base.CompressedWire = true
	runTapped(t, base, compTap)
	compareTranscripts(t, plainTap, compTap)
}

// TestCoalesceAccountingDifferential: the simulator's coalescing
// model never changes delivery — same messages, same outcomes — while
// the frame books record fewer, larger frames and strictly fewer
// total bytes.
func TestCoalesceAccountingDifferential(t *testing.T) {
	base := harness.DKGOptions{N: 7, T: 2, Seed: 41}
	v1, err := harness.RunDKG(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Coalesce = true
	v2, err := harness.RunDKG(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := v2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if v1.Stats.TotalMsgs != v2.Stats.TotalMsgs {
		t.Fatalf("coalescing changed delivery: %d vs %d messages",
			v1.Stats.TotalMsgs, v2.Stats.TotalMsgs)
	}
	if v2.Stats.Frames >= v1.Stats.Frames {
		t.Fatalf("coalescing did not reduce frames: %d vs %d",
			v2.Stats.Frames, v1.Stats.Frames)
	}
	if v2.Stats.FrameBytes >= v1.Stats.FrameBytes {
		t.Fatalf("coalescing did not reduce frame bytes: %d vs %d",
			v2.Stats.FrameBytes, v1.Stats.FrameBytes)
	}
	for _, res := range []*harness.DKGResult{v1, v2} {
		var sess int64
		for _, b := range res.Stats.SessionBytes {
			sess += b
		}
		if sess != res.Stats.FrameBytes {
			t.Fatalf("session byte books (%d) do not sum to frame bytes (%d)",
				sess, res.Stats.FrameBytes)
		}
	}
}

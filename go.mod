module hybriddkg

go 1.22

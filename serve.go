package hybriddkg

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"

	"hybriddkg/internal/dataplane"
	"hybriddkg/internal/dkg"
	"hybriddkg/internal/engine"
	"hybriddkg/internal/group"
	"hybriddkg/internal/groupmod"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/rbc"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/store"
	"hybriddkg/internal/telemetry"
	"hybriddkg/internal/thresh"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/verify"
	"hybriddkg/internal/vss"
)

// PeerAddr names one node's peer-transport endpoint.
type PeerAddr struct {
	ID   NodeID
	Addr string
}

// KeyRing is one node's authentication material: the signature scheme
// name, every node's public key, this node's private key and the
// cluster's shared transport secret. In a real deployment each node
// receives only its own private key plus all public keys (the paper's
// certificate model, §2.3).
type KeyRing struct {
	Scheme          string
	Public          map[NodeID][]byte
	Private         []byte
	TransportSecret []byte
}

// NewKeyRings generates fresh authentication material for an n-node
// cluster: one ring per node, sharing the public directory and the
// transport secret. The operator distributes ring i to node i.
func NewKeyRings(n int, schemeName string) ([]KeyRing, error) {
	scheme, err := sig.ByName(schemeName)
	if err != nil {
		return nil, err
	}
	var secret [32]byte
	if _, err := rand.Read(secret[:]); err != nil {
		return nil, err
	}
	public := make(map[NodeID][]byte, n)
	privs := make([][]byte, n)
	for i := 1; i <= n; i++ {
		priv, pub, err := scheme.GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		public[NodeID(i)] = pub
		privs[i-1] = priv
	}
	rings := make([]KeyRing, n)
	for i := range rings {
		rings[i] = KeyRing{
			Scheme:          schemeName,
			Public:          public,
			Private:         privs[i],
			TransportSecret: secret[:],
		}
	}
	return rings, nil
}

func (k KeyRing) directory() (*sig.Directory, error) {
	scheme, err := sig.ByName(k.Scheme)
	if err != nil {
		return nil, err
	}
	dir := sig.NewDirectory(scheme)
	for id, pub := range k.Public {
		if err := dir.Add(int64(id), pub); err != nil {
			return nil, err
		}
	}
	return dir, nil
}

// ServerConfig configures one node of a real TCP deployment.
type ServerConfig struct {
	Self   NodeID
	Roster Roster
	// Listen is the peer-transport address; ClientListen, when set,
	// additionally serves the client request protocol (Sign, Decrypt,
	// BeaconRound over length-prefixed frames) on that address.
	Listen       string
	ClientListen string
	Peers        []PeerAddr
	Keys         KeyRing

	// InitialLeader is the first view's leader (default node 1);
	// TimeoutBase the leader-change delay base in milliseconds
	// (default 10s).
	InitialLeader NodeID
	TimeoutBase   int64

	// MaxActive bounds concurrently active sessions (0 = unbounded).
	MaxActive int
	// VerifyWorkers sizes the speculative-verification pipeline
	// (0 = pipeline off). ShardSessions gives concurrent sessions
	// their own dispatch lanes (forced off with StateDir).
	VerifyWorkers int
	ShardSessions bool

	// StateDir enables durable state (WAL + snapshots) and restart
	// recovery. SnapshotEvery and SyncEvery tune it.
	StateDir      string
	SnapshotEvery int
	SyncEvery     int

	// MetricsListen enables the introspection endpoint on that
	// address: /metrics (Prometheus text exposition), /sessions
	// (tracer-derived session summaries) and /keys (data-plane key
	// snapshots). Empty keeps telemetry fully off — every instrument
	// stays nil and the hot paths pay a single predictable branch.
	MetricsListen string

	// Logf receives startup diagnostics (configuration adjustments
	// the server makes on the caller's behalf, e.g. ShardSessions
	// being forced off by StateDir). Nil logs to stderr; swap in a
	// no-op to silence.
	Logf func(format string, args ...any)
}

// SessionEvent is one completed DKG session on this node.
type SessionEvent struct {
	Session   uint64
	FinalView uint64
	Q         []NodeID
	PublicKey Element
	Share     *big.Int
}

// SessionFailure is a session this node could not run.
type SessionFailure struct {
	Session uint64
	Err     error
}

// EngineStats is the session engine's lifecycle accounting.
type EngineStats = engine.Stats

// WireStats is the transport's bytes-on-wire books.
type WireStats = transport.WireStats

// WireMsgType keys WireStats' per-message-type books.
type WireMsgType = msg.Type

// SessionID keys WireStats' per-session books (τ values).
type SessionID = msg.SessionID

// Server is one TCP deployment node: the session engine multiplexing
// DKG sessions over one transport endpoint, a data-plane service
// serving partial threshold operations to peers, and (optionally) the
// client request protocol on a second listener. Completed DKG
// sessions are installed on the data plane automatically: auxiliary
// sessions as nonce/beacon material, primary sessions as serving keys.
type Server struct {
	cfg    ServerConfig
	gr     *group.Group
	codec  *msg.Codec
	tnode  *transport.Node
	eng    *engine.Engine
	svc    *dataplane.Service
	dps    *dataplane.Server
	st     *store.Store
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	msrv   *telemetry.Server
	events chan SessionEvent
	fails  chan SessionFailure
	closed chan struct{}
}

// buildCodec registers every protocol decoder.
func buildCodec(gr *group.Group) (*msg.Codec, error) {
	codec := msg.NewCodec()
	for _, reg := range []func() error{
		func() error { return vss.RegisterCodec(codec, gr) },
		func() error { return dkg.RegisterCodec(codec) },
		func() error { return rbc.RegisterCodec(codec) },
		func() error { return proactive.RegisterCodec(codec) },
		func() error { return groupmod.RegisterCodec(codec, gr) },
		func() error { return dataplane.RegisterCodec(codec, gr) },
	} {
		if err := reg(); err != nil {
			return nil, err
		}
	}
	return codec, nil
}

// Serve starts one deployment node. The options carry the same
// protocol toggles as New (WithGroup, WithCompressedWire,
// WithDedupDealings, WithAdmission, …); seed-related options are
// ignored — a real node draws from crypto/rand.
func Serve(cfg ServerConfig, opts ...Option) (*Server, error) {
	if cfg.Self < 1 || cfg.Listen == "" || len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("%w: missing self/listen/peers", ErrBadOptions)
	}
	if err := cfg.Roster.validate(); err != nil {
		return nil, err
	}
	nc := defaultNetConfig()
	for _, o := range opts {
		o(&nc)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	gr, err := group.ByName(nc.groupName)
	if err != nil {
		return nil, err
	}
	dir, err := cfg.Keys.directory()
	if err != nil {
		return nil, err
	}
	if len(cfg.Keys.TransportSecret) == 0 {
		return nil, fmt.Errorf("%w: empty transport secret", ErrBadOptions)
	}
	codec, err := buildCodec(gr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		gr:     gr,
		codec:  codec,
		events: make(chan SessionEvent, 64),
		fails:  make(chan SessionFailure, 16),
		closed: make(chan struct{}),
	}

	// Telemetry is all-or-nothing per node: with MetricsListen unset
	// the registry and tracer stay nil, the bundle constructors below
	// return all-nil instruments and every emit site no-ops. The
	// bundles are created unconditionally so the wiring is identical
	// either way.
	if cfg.MetricsListen != "" {
		s.reg = telemetry.NewRegistry()
		s.tracer = telemetry.NewTracer(telemetry.TracerOptions{})
	}

	peers := make([]transport.Peer, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peers = append(peers, transport.Peer{ID: p.ID, Addr: p.Addr})
	}
	tcfg := transport.Config{
		Self:      cfg.Self,
		Listen:    cfg.Listen,
		Peers:     peers,
		Codec:     codec,
		Secret:    cfg.Keys.TransportSecret,
		TimerUnit: time.Millisecond,
		Coalesce:  !nc.legacyWire,
	}

	// One verifier for all sessions: the directory memoizes signature
	// verdicts, so proof sets shared across messages and sessions are
	// paid for once.
	dir.EnableVerifyCache(0)
	var vpool *verify.Pool
	var vcache *verify.Cache
	if cfg.VerifyWorkers > 0 {
		vpool = verify.NewPool(cfg.VerifyWorkers)
		vcache = verify.NewCache(0)
		spec := verify.NewSpeculator(vpool, vcache, dir, cfg.Self)
		tcfg.Observer = func(_ msg.SessionID, from msg.NodeID, body msg.Body) {
			spec.Observe(from, body)
		}
		// One parallelism budget: the pool's workers (plus session
		// lanes) already aim to saturate the cores; keep the group
		// kernels' own multi-exp fan-out sequential per call.
		group.SetParallelism(1)
	}
	shard := cfg.ShardSessions
	if shard && cfg.StateDir != "" {
		// Durable-state checkpoints snapshot runners from the main
		// loop and must not race concurrently dispatching lanes.
		// Never silently: callers sizing a deployment around session
		// lanes need to know the knob was overridden.
		logf("node %d: ShardSessions disabled: durable state checkpoints (StateDir) require the single event loop", cfg.Self)
		shard = false
	}
	tcfg.ShardSessions = shard

	if cfg.StateDir != "" {
		syncEvery := cfg.SyncEvery
		if syncEvery == 0 {
			syncEvery = 1
		}
		st, err := store.Open(cfg.StateDir, store.Options{
			SyncEvery: syncEvery,
			Metrics:   telemetry.NewStoreMetrics(s.reg),
		})
		if err != nil {
			closePool(vpool)
			return nil, err
		}
		s.st = st
	}

	tnode, err := transport.Listen(tcfg)
	if err != nil {
		closePool(vpool)
		s.closeStore()
		return nil, err
	}
	s.tnode = tnode

	leader := cfg.InitialLeader
	if leader == 0 {
		leader = 1
	}
	timeoutBase := cfg.TimeoutBase
	if timeoutBase == 0 {
		timeoutBase = 10_000 // 10s at 1ms/unit before the first leader change
	}
	params := dkg.Params{
		Group:          gr,
		N:              cfg.Roster.N,
		T:              cfg.Roster.T,
		F:              cfg.Roster.F,
		HashedEcho:     nc.hashedEcho,
		DedupDealings:  nc.dedupDealings,
		CompressedWire: nc.compressedWire,
		DisableBatch:   nc.disableBatch,
		Certificates:   nc.certificates,
		Directory:      dir,
		SignKey:        cfg.Keys.Private,
		InitialLeader:  leader,
		TimeoutBase:    timeoutBase,
		Metrics:        telemetry.NewProtocolMetrics(s.reg),
		Trace:          s.tracer,
	}
	if vcache != nil {
		params.Verdicts = vcache
		params.Parallel = vpool
	}

	// The data-plane service rides the same transport on its reserved
	// session. Auxiliary DKGs are provisioned through the engine: the
	// default Provision submits locally and broadcasts a Prepare,
	// whose handler submits on every peer. The handler is registered
	// before the service exists (the port is part of its config), so
	// it late-binds.
	peerIDs := make([]msg.NodeID, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peerIDs = append(peerIDs, p.ID)
	}
	dh := &dataServiceHandler{}
	port, err := tnode.RegisterSession(dataplane.PeerSession, dh)
	if err != nil {
		s.teardown(vpool)
		return nil, err
	}
	dcfg := dataplane.Config{
		Group: gr,
		Self:  cfg.Self,
		N:     cfg.Roster.N,
		T:     cfg.Roster.T,
		Peers: peerIDs,
		Send:  func(to msg.NodeID, body msg.Body) { port.Send(to, body) },
		Submit: func(sid msg.SessionID) {
			tnode.Do(func() {
				if err := s.eng.Submit(sid); err != nil && !errors.Is(err, engine.ErrDuplicate) {
					s.fail(uint64(sid), err)
				}
			})
		},
		Defer: func(d time.Duration, fn func()) {
			time.AfterFunc(d, fn)
		},
		Rand:        rand.Reader,
		Rate:        nc.rate,
		Burst:       nc.burst,
		MaxPending:  nc.maxPending,
		MaxBatch:    nc.maxBatch,
		NonceTarget: nc.nonceTarget,
		BeaconAhead: nc.beaconAhead,
	}
	svc := dataplane.NewService(dcfg)
	s.svc = svc
	dh.svc = svc

	ecfg := engine.Config{
		Fabric: engine.NewTransportFabric(tnode),
		Factory: func(sid msg.SessionID, rt engine.Runtime) (engine.Runner, error) {
			return dkg.NewNode(params, uint64(sid), cfg.Self, rt, dkg.Options{})
		},
		Start: func(sid msg.SessionID, r engine.Runner) error {
			return r.(*dkg.Node).Start(rand.Reader)
		},
		MaxActive:     cfg.MaxActive,
		KeepCompleted: true,
		OnCompleted:   s.onCompleted,
		OnFailed: func(sid msg.SessionID, err error) {
			s.fail(uint64(sid), err)
		},
		Metrics: telemetry.NewEngineMetrics(s.reg),
		Trace:   s.tracer,
	}
	if s.st != nil {
		snapEvery := cfg.SnapshotEvery
		if snapEvery == 0 {
			snapEvery = 64
		}
		ecfg.Journal = s.st
		ecfg.Codec = codec
		ecfg.Self = cfg.Self
		ecfg.SnapshotEvery = snapEvery
		ecfg.RestoreRunner = func(sid msg.SessionID, rt engine.Runtime, snap []byte) (engine.Runner, error) {
			return dkg.RestoreNode(params, uint64(sid), cfg.Self, rt, dkg.Options{}, codec, snap)
		}
		// Completed sessions keep serving protocol-level help
		// requests (§5.3) for crashed peers that restart later.
		ecfg.LingerCompleted = true
	}
	if vpool != nil {
		// The engine owns the pool's lifecycle.
		ecfg.VerifyPool = vpool
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		s.teardown(vpool)
		return nil, err
	}
	s.eng = eng

	if cfg.ClientListen != "" {
		ln, err := net.Listen("tcp", cfg.ClientListen)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.dps = dataplane.NewServer(ln, svc, nc.groupName)
	}

	if s.reg != nil {
		// Scrape-time collectors over the subsystems that already keep
		// their own cheap stats; registered last so they observe the
		// fully assembled node.
		tnode.RegisterMetrics(s.reg)
		verify.RegisterMetrics(s.reg, vpool, vcache)
		svc.RegisterMetrics(s.reg)
		msrv, err := telemetry.ListenAndServe(cfg.MetricsListen, telemetry.ServeOptions{
			Registry: s.reg,
			Tracer:   s.tracer,
			Keys:     func() any { return svc.KeysSnapshot() },
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.msrv = msrv
	}
	return s, nil
}

func closePool(p *verify.Pool) {
	if p != nil {
		p.Close()
	}
}

func (s *Server) closeStore() {
	if s.st != nil {
		s.st.Close()
		s.st = nil
	}
}

func (s *Server) teardown(vpool *verify.Pool) {
	if s.tnode != nil {
		s.tnode.Close()
	}
	closePool(vpool)
	s.closeStore()
}

// dataServiceHandler adapts the data-plane service to the transport
// Handler surface, late-binding the service so the session port can
// be part of the service's configuration.
type dataServiceHandler struct{ svc *dataplane.Service }

func (h *dataServiceHandler) HandleMessage(from msg.NodeID, body msg.Body) {
	if h.svc != nil {
		h.svc.HandleMessage(from, body)
	}
}
func (h *dataServiceHandler) HandleTimer(uint64) {}
func (h *dataServiceHandler) HandleRecover()     {}

// onCompleted routes every finished DKG session: auxiliary sessions
// install nonce/beacon material, primary sessions become serving keys
// and are reported on Events.
func (s *Server) onCompleted(sid msg.SessionID, r engine.Runner) {
	ev := r.(*dkg.Node).Result()
	if dataplane.IsAux(sid) {
		s.svc.InstallAux(sid, ev.Share, ev.V)
		return
	}
	if uint64(sid) < 1<<24 {
		// Session IDs in key-ID range serve through the data plane;
		// re-installation after a restore is a harmless no-op error.
		_, _ = s.svc.InstallKey(sid, ev.Share, ev.V)
	}
	select {
	case s.events <- SessionEvent{
		Session:   ev.Tau,
		FinalView: ev.FinalView,
		Q:         ev.Q,
		PublicKey: ev.PublicKey,
		Share:     ev.Share,
	}:
	case <-s.closed:
	}
}

func (s *Server) fail(sid uint64, err error) {
	select {
	case s.fails <- SessionFailure{Session: sid, Err: err}:
	case <-s.closed:
	}
}

// Addr returns the peer-transport listen address.
func (s *Server) Addr() string { return s.tnode.Addr() }

// ClientAddr returns the client-protocol listen address ("" when no
// client endpoint was configured).
func (s *Server) ClientAddr() string {
	if s.dps == nil {
		return ""
	}
	return s.dps.Addr()
}

// Start submits one DKG session (τ = sid). Completion arrives on
// Events, failure on Failures.
func (s *Server) Start(sid uint64) {
	s.tnode.Do(func() {
		if err := s.eng.Submit(msg.SessionID(sid)); err != nil {
			s.fail(sid, err)
		}
	})
}

// Events delivers completed primary sessions.
func (s *Server) Events() <-chan SessionEvent { return s.events }

// Failures delivers sessions that could not run.
func (s *Server) Failures() <-chan SessionFailure { return s.fails }

// Restore resumes journaled sessions from the state directory,
// returning their IDs. Sessions that restore as already completed
// fire Events during the call, so callers must drain concurrently.
func (s *Server) Restore() ([]uint64, error) {
	if s.st == nil {
		return nil, nil
	}
	type outcome struct {
		sids []msg.SessionID
		err  error
	}
	ch := make(chan outcome, 1)
	s.tnode.Do(func() {
		sids, err := s.eng.Restore()
		ch <- outcome{sids, err}
	})
	out := <-ch
	if out.err != nil {
		return nil, out.err
	}
	ids := make([]uint64, len(out.sids))
	for i, sid := range out.sids {
		ids[i] = uint64(sid)
	}
	return ids, nil
}

// Checkpoint snapshots every live session into the state directory
// and syncs it, for a clean shutdown that the next incarnation can
// resume from.
func (s *Server) Checkpoint() error {
	if s.st == nil {
		return nil
	}
	ch := make(chan error, 1)
	s.tnode.Do(func() { ch <- s.eng.Checkpoint() })
	if err := <-ch; err != nil {
		return err
	}
	return s.st.Sync()
}

// EngineStats returns the session engine's lifecycle accounting.
func (s *Server) EngineStats() EngineStats { return s.eng.Stats() }

// ServiceStats returns this node's data-plane counters.
func (s *Server) ServiceStats() ServiceStats { return s.svc.Stats() }

// WireStats returns the cumulative bytes-on-wire books.
func (s *Server) WireStats() (WireStats, bool) { return s.eng.WireStats() }

// MetricsAddr returns the introspection endpoint's listen address
// ("" when MetricsListen was not configured).
func (s *Server) MetricsAddr() string {
	if s.msrv == nil {
		return ""
	}
	return s.msrv.Addr()
}

// SessionSummary is the tracer-derived state of one session, as
// served on /sessions.
type SessionSummary = telemetry.SessionSummary

// SessionSummaries returns the telemetry view of every retained
// session (nil without MetricsListen).
func (s *Server) SessionSummaries() []SessionSummary { return s.tracer.Sessions() }

// SessionTimeline renders the last n traced events of one session for
// failure diagnostics ("" without MetricsListen).
func (s *Server) SessionTimeline(sid uint64, n int) string {
	if s.tracer == nil {
		return ""
	}
	return s.tracer.FormatTimeline(sid, n)
}

// Close shuts the node down: client endpoint, data plane, engine
// (which joins the verification pool), transport and durable state.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
		close(s.closed)
	}
	if s.msrv != nil {
		s.msrv.Close()
	}
	if s.dps != nil {
		s.dps.Close()
	}
	s.svc.Close()
	if s.eng != nil {
		s.eng.Close()
	}
	s.tnode.Close()
	s.closeStore()
}

// Client talks the client request protocol to a serving node: it
// holds no share and sees no secrets, only requests operations under
// installed keys and receives aggregated results.
type Client struct {
	c *dataplane.Client
}

// Dial connects to a node's client endpoint and performs the
// version/group handshake.
func Dial(addr string) (*Client, error) {
	c, err := dataplane.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// GroupName reports the server's group parameter set.
func (c *Client) GroupName() string { return c.c.GroupName() }

// Roster reports the server's group size and threshold.
func (c *Client) Roster() (n, t int) { return c.c.Roster() }

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// KeyDescription is the public description of a served key.
type KeyDescription struct {
	ID        uint64
	PublicKey Element
	N, T      int
	State     KeyState
}

// KeyInfo fetches a served key's public description.
func (c *Client) KeyInfo(ctx context.Context, key uint64) (KeyDescription, error) {
	info, err := c.c.KeyInfo(ctx, key)
	if err != nil {
		return KeyDescription{}, err
	}
	return KeyDescription{
		ID:        uint64(info.ID),
		PublicKey: info.PublicKey,
		N:         info.N,
		T:         info.T,
		State:     info.State,
	}, nil
}

// Sign requests a threshold signature on message under the key.
func (c *Client) Sign(ctx context.Context, key uint64, message []byte) (Signature, error) {
	sg, err := c.c.Sign(ctx, key, message)
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: sg.R, Sigma: sg.Sigma}, nil
}

// Verify checks a signature against a key's public key (from
// KeyInfo) using the server's group parameters.
func (c *Client) Verify(pk Element, message []byte, s Signature) bool {
	return thresh.Verify(c.c.Group(), pk, message, thresh.Signature{R: s.R, Sigma: s.Sigma})
}

// Encrypt encrypts a group element under a served key's public key.
func (c *Client) Encrypt(pk Element, m Element) (Ciphertext, error) {
	ct, err := thresh.Encrypt(c.c.Group(), pk, m, rand.Reader)
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{C1: ct.C1, C2: ct.C2}, nil
}

// RandomElement returns a uniformly random group element (a convenient
// test plaintext for Encrypt/Decrypt round-trips).
func (c *Client) RandomElement() (Element, error) {
	gr := c.c.Group()
	k, err := gr.RandScalar(rand.Reader)
	if err != nil {
		return nil, err
	}
	return gr.GExp(k), nil
}

// Decrypt requests verified threshold decryption of ct.
func (c *Client) Decrypt(ctx context.Context, key uint64, ct Ciphertext) (Element, error) {
	return c.c.Decrypt(ctx, key, thresh.Ciphertext{C1: ct.C1, C2: ct.C2})
}

// Beacon requests one random-beacon round and verifies the output
// against its opening before returning it.
func (c *Client) Beacon(ctx context.Context, key uint64, round uint64) (BeaconResult, error) {
	out, err := c.c.Beacon(ctx, key, round)
	if err != nil {
		return BeaconResult{}, err
	}
	gr := c.c.Group()
	if out.Output != thresh.BeaconOutput(gr, round, out.Opened) ||
		!gr.GExp(out.Opened).Equal(out.EphemeralPK) {
		return BeaconResult{}, fmt.Errorf("hybriddkg: beacon round %d output fails public verification", round)
	}
	return out, nil
}

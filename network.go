package hybriddkg

import (
	"context"
	"fmt"
	"math/big"
	"runtime"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/dataplane"
	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/simnet"
	"hybriddkg/internal/thresh"
	"hybriddkg/internal/verify"
)

// KeyState is the serving lifecycle of a Key: Ready (installed, not
// yet serving), Serving, Retiring (draining, no new requests).
type KeyState = dataplane.KeyState

// Key lifecycle states.
const (
	KeyReady    = dataplane.StateReady
	KeyServing  = dataplane.StateServing
	KeyRetiring = dataplane.StateRetiring
)

// BeaconResult is one random-beacon round: Output is the 32-byte
// beacon value, publicly verifiable from the Opened round secret and
// its EphemeralPK (g^Opened = EphemeralPK).
type BeaconResult = dataplane.BeaconResult

// ServiceStats is one node's data-plane activity counters.
type ServiceStats = dataplane.Stats

// ErrOverloaded is returned when per-key admission control sheds a
// request (token bucket empty or pending queue full).
var ErrOverloaded = dataplane.ErrOverloaded

// ErrRetiring is returned for requests against a retiring key.
var ErrRetiring = dataplane.ErrRetiring

// Network is an in-memory deployment of n protocol nodes over the
// deterministic asynchronous simulator, each running a data-plane
// service for threshold operations. Completed DKG sessions become
// long-lived Key objects whose Sign/Decrypt/Beacon methods fan
// partial-operation requests out to the nodes and aggregate the
// results. Operations run sequentially; the Network is not safe for
// concurrent use (real deployments use cmd/dkgnode, not this
// simulator).
type Network struct {
	cfg    netConfig
	roster Roster
	gr     *group.Group
	sim    *simnet.Network
	dir    *sig.Directory
	privs  map[msg.NodeID][]byte
	rng    *randutil.Reader
	seq    uint64 // session counter (τ values and key IDs)

	services map[msg.NodeID]*dataplane.Service
	pool     *verify.Pool
	verdicts map[msg.NodeID]*verify.Cache

	// Auxiliary (nonce/beacon) DKG sessions requested by the services
	// but not yet run. The pump loop drains this between simulator
	// runs so a DKG never starts from inside a message handler.
	pendingAux  []msg.SessionID
	provisioned map[msg.SessionID]bool

	closed bool
}

// New builds an n-node in-memory network per the roster and options.
func New(roster Roster, opts ...Option) (*Network, error) {
	if err := roster.validate(); err != nil {
		return nil, err
	}
	cfg := defaultNetConfig()
	for _, o := range opts {
		o(&cfg)
	}
	gr, err := group.ByName(cfg.groupName)
	if err != nil {
		return nil, err
	}
	scheme, err := sig.ByName(cfg.sigScheme)
	if err != nil {
		return nil, err
	}
	rng := randutil.NewReader(cfg.seed)
	dir := sig.NewDirectory(scheme)
	privs := make(map[msg.NodeID][]byte, roster.N)
	for i := 1; i <= roster.N; i++ {
		priv, pub, err := scheme.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		if err := dir.Add(int64(i), pub); err != nil {
			return nil, err
		}
		privs[msg.NodeID(i)] = priv
	}
	nw := &Network{
		cfg:         cfg,
		roster:      roster,
		gr:          gr,
		sim:         simnet.New(simnet.Options{Seed: cfg.seed}),
		dir:         dir,
		privs:       privs,
		rng:         rng,
		services:    make(map[msg.NodeID]*dataplane.Service, roster.N),
		provisioned: make(map[msg.SessionID]bool),
	}
	if cfg.verifyWorkers != 0 {
		workers := cfg.verifyWorkers
		if workers < 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		nw.pool = verify.NewPool(workers)
	}
	if cfg.verdictEntries != 0 {
		entries := cfg.verdictEntries
		if entries < 0 {
			entries = 0 // implementation default capacity
		}
		nw.verdicts = make(map[msg.NodeID]*verify.Cache, roster.N)
		for i := 1; i <= roster.N; i++ {
			nw.verdicts[msg.NodeID(i)] = verify.NewCache(entries)
		}
	}

	peers := make([]msg.NodeID, 0, roster.N)
	for i := 1; i <= roster.N; i++ {
		peers = append(peers, msg.NodeID(i))
	}
	for i := 1; i <= roster.N; i++ {
		id := msg.NodeID(i)
		env := nw.sim.SessionEnv(id, dataplane.PeerSession)
		svc := dataplane.NewService(dataplane.Config{
			Group:       gr,
			Self:        id,
			N:           roster.N,
			T:           roster.T,
			Peers:       peers,
			Send:        func(to msg.NodeID, body msg.Body) { env.Send(to, body) },
			Provision:   nw.requestAux,
			Rand:        randutil.NewReader(cfg.seed ^ uint64(id)<<16),
			Rate:        cfg.rate,
			Burst:       cfg.burst,
			MaxPending:  cfg.maxPending,
			MaxBatch:    cfg.maxBatch,
			NonceTarget: cfg.nonceTarget,
			BeaconAhead: cfg.beaconAhead,
		})
		nw.services[id] = svc
		if err := nw.sim.RegisterSession(id, dataplane.PeerSession, serviceHandler{svc}); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// serviceHandler adapts a data-plane Service to the simulator Handler.
type serviceHandler struct{ svc *dataplane.Service }

func (h serviceHandler) HandleMessage(from msg.NodeID, body msg.Body) {
	h.svc.HandleMessage(from, body)
}
func (h serviceHandler) HandleTimer(uint64) {}
func (h serviceHandler) HandleRecover()     {}

// Group exposes the discrete-log parameters in use.
func (nw *Network) Group() *group.Group { return nw.gr }

// N returns the group size.
func (nw *Network) N() int { return nw.roster.N }

// T returns the Byzantine threshold.
func (nw *Network) T() int { return nw.roster.T }

// Stats returns the simulator's message/byte accounting so far.
func (nw *Network) Stats() simnet.Stats { return nw.sim.Stats() }

// ServiceStats returns one node's data-plane counters.
func (nw *Network) ServiceStats(id NodeID) ServiceStats {
	if svc := nw.services[id]; svc != nil {
		return svc.Stats()
	}
	return ServiceStats{}
}

// VerifyStats returns the shared verification-pool counters, if a
// pool was configured with WithParallelVerify.
func (nw *Network) VerifyStats() (verify.PoolStats, bool) {
	if nw.pool == nil {
		return verify.PoolStats{}, false
	}
	return nw.pool.Stats(), true
}

// Crash marks a node crashed (messages to it are lost until Recover).
func (nw *Network) Crash(id int) { nw.sim.Crash(msg.NodeID(id)) }

// Recover brings a crashed node back.
func (nw *Network) Recover(id int) { nw.sim.Recover(msg.NodeID(id)) }

// Close shuts down every data-plane service (failing their pending
// requests) and the verification pool.
func (nw *Network) Close() {
	if nw.closed {
		return
	}
	nw.closed = true
	for _, svc := range nw.services {
		svc.Close()
	}
	if nw.pool != nil {
		nw.pool.Close()
	}
}

// dkgParams builds the protocol parameters shared by all sessions,
// threading the configured verification pipeline into the VSS layer.
func (nw *Network) dkgParams(id msg.NodeID) dkg.Params {
	p := dkg.Params{
		Group:          nw.gr,
		N:              nw.roster.N,
		T:              nw.roster.T,
		F:              nw.roster.F,
		HashedEcho:     nw.cfg.hashedEcho,
		DedupDealings:  nw.cfg.dedupDealings,
		CompressedWire: nw.cfg.compressedWire,
		DisableBatch:   nw.cfg.disableBatch,
		Certificates:   nw.cfg.certificates,
		Directory:      nw.dir,
		SignKey:        nw.privs[id],
	}
	if nw.pool != nil {
		p.Parallel = nw.pool
	}
	if nw.verdicts != nil {
		p.Verdicts = nw.verdicts[id]
	}
	return p
}

type handlerAdapter struct {
	onMsg     func(msg.NodeID, msg.Body)
	onTimer   func(uint64)
	onRecover func()
}

func (h handlerAdapter) HandleMessage(from msg.NodeID, body msg.Body) { h.onMsg(from, body) }
func (h handlerAdapter) HandleTimer(id uint64) {
	if h.onTimer != nil {
		h.onTimer(id)
	}
}
func (h handlerAdapter) HandleRecover() {
	if h.onRecover != nil {
		h.onRecover()
	}
}

// dkgResult is one completed DKG: the commitment vector and every
// live node's share.
type dkgResult struct {
	pk     group.Element
	v      *commit.Vector
	shares map[msg.NodeID]*big.Int
}

// runDKG runs one full DKG session with the given τ and collects the
// result. Crashed nodes neither deal nor complete; the DKG tolerates
// up to f of them.
func (nw *Network) runDKG(tau uint64) (*dkgResult, error) {
	nodes := make(map[msg.NodeID]*dkg.Node, nw.roster.N)
	for i := 1; i <= nw.roster.N; i++ {
		id := msg.NodeID(i)
		node, err := dkg.NewNode(nw.dkgParams(id), tau, id, nw.sim.Env(id), dkg.Options{})
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		nw.sim.Register(id, handlerAdapter{
			onMsg:     node.Handle,
			onTimer:   node.HandleTimer,
			onRecover: node.HandleRecover,
		})
	}
	for i := 1; i <= nw.roster.N; i++ {
		id := msg.NodeID(i)
		if nw.sim.Crashed(id) {
			continue
		}
		if err := nodes[id].Start(randutil.NewReader(nw.cfg.seed ^ tau<<32 ^ uint64(id))); err != nil {
			return nil, err
		}
	}
	done := func() bool {
		for id, node := range nodes {
			if nw.sim.Crashed(id) {
				continue
			}
			if !node.Done() {
				return false
			}
		}
		return true
	}
	nw.sim.RunUntil(done, 0)
	nw.sim.Run(0)
	if !done() {
		return nil, ErrIncomplete
	}
	res := &dkgResult{shares: make(map[msg.NodeID]*big.Int, nw.roster.N)}
	for id, node := range nodes {
		if !node.Done() {
			continue // crashed mid-run; recovers via help, has no share yet
		}
		r := node.Result()
		if res.pk == nil {
			res.pk = r.PublicKey
			res.v = r.V
		}
		res.shares[id] = r.Share
	}
	if res.pk == nil {
		return nil, ErrIncomplete
	}
	return res, nil
}

// requestAux is every service's Provision hook: it queues the listed
// auxiliary sessions for a real DKG run. The pump loop drains the
// queue between simulator runs — never from inside a message handler,
// where a nested simulator run would re-enter the scheduler.
func (nw *Network) requestAux(_ msg.SessionID, sids []msg.SessionID) {
	for _, sid := range sids {
		if nw.provisioned[sid] {
			continue
		}
		nw.provisioned[sid] = true
		nw.pendingAux = append(nw.pendingAux, sid)
	}
}

// drainAux runs every queued auxiliary DKG and installs the resulting
// shares on all services.
func (nw *Network) drainAux() {
	for len(nw.pendingAux) > 0 {
		sid := nw.pendingAux[0]
		nw.pendingAux = nw.pendingAux[1:]
		out, err := nw.runDKG(uint64(sid))
		if err != nil {
			// Leave the session unprovisioned; the affected requests
			// fail through the data plane's availability accounting.
			delete(nw.provisioned, sid)
			continue
		}
		for id, svc := range nw.services {
			if sh := out.shares[id]; sh != nil {
				svc.InstallAux(sid, sh, out.v)
			}
		}
	}
}

// pump drives the simulator (and any auxiliary DKGs the data plane
// requests along the way) until done or no progress is possible.
func (nw *Network) pump(ctx context.Context, key msg.SessionID, done func() bool) error {
	for i := 0; i < 256; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		nw.drainAux()
		nw.sim.RunUntil(done, 2_000_000)
		if done() {
			return nil
		}
		for _, svc := range nw.services {
			svc.Kick(key)
		}
		if done() {
			return nil
		}
		if len(nw.pendingAux) == 0 && nw.sim.Pending() == 0 {
			return ErrIncomplete
		}
	}
	return ErrIncomplete
}

// Key is a long-lived distributed key served by the network's data
// plane: one DKG session's output installed on every node, with a
// serving lifecycle (Ready → Serving → Retiring) and threshold
// operations that aggregate partial results from a quorum.
type Key struct {
	nw     *Network
	id     msg.SessionID
	agg    msg.NodeID // pinned aggregator; 0 = lowest live node
	pk     group.Element
	v      *commit.Vector
	shares map[msg.NodeID]*big.Int
}

// GenerateKey runs one full DKG and installs the result on every
// node's data-plane service, returning the serving Key.
func (nw *Network) GenerateKey(ctx context.Context, opts ...KeyOption) (*Key, error) {
	var kc keyConfig
	for _, o := range opts {
		o(&kc)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	nw.seq++
	tau := nw.seq
	out, err := nw.runDKG(tau)
	if err != nil {
		return nil, err
	}
	sid := msg.SessionID(tau)
	for id, svc := range nw.services {
		sh := out.shares[id]
		if sh == nil {
			continue // crashed for the whole run: no share to serve
		}
		if _, err := svc.InstallKey(sid, sh, out.v); err != nil {
			return nil, err
		}
	}
	k := &Key{nw: nw, id: sid, agg: kc.aggregator, pk: out.pk, v: out.v, shares: out.shares}
	if kc.eager {
		nw.services[k.aggregator()].Activate(sid)
		if err := nw.pump(ctx, sid, func() bool {
			info, ok := nw.services[k.aggregator()].KeyInfo(sid)
			return ok && info.State == KeyServing && len(nw.pendingAux) == 0
		}); err != nil {
			return nil, fmt.Errorf("eager activation: %w", err)
		}
	}
	return k, nil
}

// ID returns the key's session identifier.
func (k *Key) ID() uint64 { return uint64(k.id) }

// PublicKey returns the distributed public key.
func (k *Key) PublicKey() Element { return k.pk }

// Commitment returns the Feldman vector commitment binding the
// shares to the public key.
func (k *Key) Commitment() *commit.Vector { return k.v }

// Shares exposes every live node's share (in-memory deployment only;
// a real deployment holds one share per machine).
func (k *Key) Shares() map[NodeID]*big.Int { return k.shares }

// State reports the key's serving lifecycle on its aggregator.
func (k *Key) State() KeyState {
	info, ok := k.nw.services[k.aggregator()].KeyInfo(k.id)
	if !ok {
		return KeyRetiring
	}
	return info.State
}

// aggregator resolves the node that fronts this key's requests.
func (k *Key) aggregator() msg.NodeID {
	if k.agg != 0 {
		return k.agg
	}
	for i := 1; i <= k.nw.roster.N; i++ {
		if !k.nw.sim.Crashed(msg.NodeID(i)) {
			return msg.NodeID(i)
		}
	}
	return 1
}

// do submits one data-plane request via the key's aggregator and
// pumps the network until its callback fires.
func (k *Key) do(ctx context.Context, submit func(svc *dataplane.Service, cb dataplane.Callback) error) (dataplane.Result, error) {
	svc := k.nw.services[k.aggregator()]
	var (
		res  dataplane.Result
		rerr error
		ok   bool
	)
	if err := submit(svc, func(r dataplane.Result, err error) {
		res, rerr, ok = r, err, true
	}); err != nil {
		return dataplane.Result{}, err
	}
	svc.Flush(k.id)
	if err := k.nw.pump(ctx, k.id, func() bool { return ok }); err != nil {
		return dataplane.Result{}, err
	}
	if !ok {
		return dataplane.Result{}, ErrIncomplete
	}
	return res, rerr
}

// Sign produces a threshold Schnorr signature on message. Nonces come
// from the key's pre-provisioned reservoir (each an independent DKG
// session, consumed exactly once); partials are collected from t+1
// nodes and verified before combination, with forgers evicted.
func (k *Key) Sign(ctx context.Context, message []byte) (Signature, error) {
	res, err := k.do(ctx, func(svc *dataplane.Service, cb dataplane.Callback) error {
		return svc.Sign(k.id, message, cb)
	})
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: res.Sig.R, Sigma: res.Sig.Sigma}, nil
}

// SignBatch signs every message in one coalesced partial round-trip
// (a single fan-out carrying len(messages) items).
func (k *Key) SignBatch(ctx context.Context, messages [][]byte) ([]Signature, error) {
	svc := k.nw.services[k.aggregator()]
	sigs := make([]Signature, len(messages))
	errs := make([]error, len(messages))
	left := len(messages)
	for i, m := range messages {
		i := i
		if err := svc.Sign(k.id, m, func(r dataplane.Result, err error) {
			sigs[i] = Signature{R: r.Sig.R, Sigma: r.Sig.Sigma}
			errs[i] = err
			left--
		}); err != nil {
			return nil, err
		}
	}
	svc.Flush(k.id)
	if err := k.nw.pump(ctx, k.id, func() bool { return left == 0 }); err != nil {
		return nil, err
	}
	if left != 0 {
		return nil, ErrIncomplete
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sigs, nil
}

// Verify checks a threshold signature against the public key.
func (k *Key) Verify(message []byte, s Signature) bool {
	return thresh.Verify(k.nw.gr, k.pk, message, thresh.Signature{R: s.R, Sigma: s.Sigma})
}

// Encrypt encrypts a group element under the public key.
func (k *Key) Encrypt(m Element) (Ciphertext, error) {
	ct, err := thresh.Encrypt(k.nw.gr, k.pk, m, k.nw.rng)
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{C1: ct.C1, C2: ct.C2}, nil
}

// Decrypt runs verified threshold decryption: t+1 nodes return
// DLEQ-proven partial decryptions which are checked and combined.
func (k *Key) Decrypt(ctx context.Context, ct Ciphertext) (Element, error) {
	res, err := k.do(ctx, func(svc *dataplane.Service, cb dataplane.Callback) error {
		return svc.Decrypt(k.id, thresh.Ciphertext{C1: ct.C1, C2: ct.C2}, cb)
	})
	if err != nil {
		return nil, err
	}
	return res.Plain, nil
}

// Beacon opens one random-beacon round (rounds start at 1). Round
// keys are independent DKG sessions provisioned ahead of demand;
// every aggregator opening the same round gets the same output.
func (k *Key) Beacon(ctx context.Context, round uint64) (BeaconResult, error) {
	res, err := k.do(ctx, func(svc *dataplane.Service, cb dataplane.Callback) error {
		return svc.Beacon(k.id, round, cb)
	})
	if err != nil {
		return BeaconResult{}, err
	}
	return res.Beacon, nil
}

// Renew runs one proactive renewal phase (§5): every share is
// replaced, the public key is preserved, old shares become useless.
// The renewed shares are re-installed on every node's service, which
// also invalidates partial-result caches from the old share epoch.
func (k *Key) Renew(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	nw := k.nw
	nw.seq++
	phase := nw.seq
	engines := make(map[msg.NodeID]*proactive.Engine, nw.roster.N)
	for i := 1; i <= nw.roster.N; i++ {
		id := msg.NodeID(i)
		cfg := proactive.Config{
			DKG:  nw.dkgParams(id),
			Rand: randutil.NewReader(nw.cfg.seed ^ phase<<40 ^ uint64(id)),
		}
		eng, err := proactive.NewEngine(cfg, id, nw.sim.Env(id), k.shares[id], k.v, nil)
		if err != nil {
			return err
		}
		engines[id] = eng
		nw.sim.Register(id, handlerAdapter{
			onMsg:     eng.HandleMessage,
			onTimer:   eng.HandleTimer,
			onRecover: eng.HandleRecover,
		})
	}
	for i := 1; i <= nw.roster.N; i++ {
		if err := engines[msg.NodeID(i)].Tick(); err != nil {
			return err
		}
	}
	done := func() bool {
		for id, eng := range engines {
			if nw.sim.Crashed(id) {
				continue
			}
			if eng.Phase() < 1 {
				return false
			}
		}
		return true
	}
	nw.sim.RunUntil(done, 0)
	nw.sim.Run(0)
	if !done() {
		return ErrIncomplete
	}
	for id, eng := range engines {
		if eng.Phase() < 1 {
			// Crashed mid-phase: its old share is invalidated by the
			// renewal; it re-acquires one via recovery, not here.
			delete(k.shares, id)
			continue
		}
		k.shares[id] = eng.Share()
		k.v = eng.Commitment()
	}
	k.pk = k.v.PublicKey()
	for id, svc := range nw.services {
		sh := k.shares[id]
		if sh == nil {
			continue
		}
		if _, err := svc.InstallKey(k.id, sh, k.v); err != nil {
			return err
		}
	}
	return nil
}

// Retire moves the key to Retiring on every node: in-flight requests
// drain, new ones are rejected with ErrRetiring.
func (k *Key) Retire() {
	for _, svc := range k.nw.services {
		svc.Retire(k.id)
	}
}

// Reconstruct opens the shared secret by combining t+1 shares (the
// Rec protocol's arithmetic; exposed for beacons and tests — real
// deployments never open long-term keys).
func (k *Key) Reconstruct() (*big.Int, error) {
	pts := make([]poly.Point, 0, k.nw.roster.T+1)
	for id, share := range k.shares {
		pts = append(pts, poly.Point{X: int64(id), Y: share})
		if len(pts) == k.nw.roster.T+1 {
			break
		}
	}
	if len(pts) < k.nw.roster.T+1 {
		return nil, ErrIncomplete
	}
	return poly.Interpolate(k.nw.gr.Q(), pts, 0)
}

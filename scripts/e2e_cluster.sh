#!/usr/bin/env bash
# End-to-end deployment check: build cmd/dkgnode, launch a real 4-node
# TCP cluster on localhost in `serve` mode with 2 concurrent DKG
# sessions each, and gate on every node printing the same public key
# per session (and different keys across sessions).
#
# Runs locally (./scripts/e2e_cluster.sh) and as the CI e2e job.
set -euo pipefail

N=4
T=1
SESSIONS=2
TIMEOUT="${E2E_TIMEOUT:-120s}"
BASE_PORT="${E2E_BASE_PORT:-9461}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building dkgnode"
go build -o "$workdir/dkgnode" ./cmd/dkgnode

echo "== generating key directory"
"$workdir/dkgnode" keygen -n "$N" -out "$workdir/keys.json" >/dev/null

peers=""
for i in $(seq 1 "$N"); do
  peers+="${peers:+,}$i=127.0.0.1:$((BASE_PORT + i))"
done

echo "== launching $N nodes ($SESSIONS sessions each, peers $peers)"
for i in $(seq 1 "$N"); do
  "$workdir/dkgnode" serve \
    -id "$i" -listen "127.0.0.1:$((BASE_PORT + i))" \
    -peers "$peers" -keys "$workdir/keys.json" \
    -n "$N" -t "$T" -sessions "$SESSIONS" -timeout "$TIMEOUT" \
    >"$workdir/node$i.out" 2>"$workdir/node$i.err" </dev/null &
  pids+=($!)
done

status=0
for idx in "${!pids[@]}"; do
  if ! wait "${pids[$idx]}"; then
    echo "!! node $((idx + 1)) exited non-zero" >&2
    status=1
  fi
done
pids=()
if [ "$status" -ne 0 ]; then
  tail -n +1 "$workdir"/node*.err >&2 || true
  exit "$status"
fi

echo "== validating session keys"
for s in $(seq 1 "$SESSIONS"); do
  keys=$(
    for i in $(seq 1 "$N"); do
      python3 -c '
import json, sys
session = int(sys.argv[2])
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc["session"] == session:
        print(doc["publicKey"])
' "$workdir/node$i.out" "$s"
    done
  )
  count=$(printf '%s\n' "$keys" | wc -l)
  uniq_count=$(printf '%s\n' "$keys" | sort -u | wc -l)
  if [ "$count" -ne "$N" ] || [ "$uniq_count" -ne 1 ]; then
    echo "!! session $s: expected $N matching keys, got $count keys ($uniq_count distinct)" >&2
    tail -n +1 "$workdir"/node*.out >&2 || true
    exit 1
  fi
  echo "   session $s: $N/$N nodes agree on $(printf '%s\n' "$keys" | head -1 | cut -c1-16)…"
done

cross=$(
  for s in $(seq 1 "$SESSIONS"); do
    python3 -c '
import json, sys
session = int(sys.argv[2])
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc["session"] == session:
        print(doc["publicKey"])
        break
' "$workdir/node1.out" "$s"
  done | sort -u | wc -l
)
if [ "$cross" -ne "$SESSIONS" ]; then
  echo "!! sessions produced identical keys ($cross distinct of $SESSIONS)" >&2
  exit 1
fi

echo "== e2e cluster OK: $SESSIONS concurrent sessions, one key per session"

#!/usr/bin/env bash
# End-to-end deployment check: build cmd/dkgnode, launch a real 4-node
# TCP cluster on localhost in `serve` mode with 2 concurrent DKG
# sessions each, and gate on every node printing the same public key
# per session (and different keys across sessions). Node 2 runs with
# -wire-v1 (legacy per-message framing, full dealings), so phase 1 is
# also the rolling-upgrade check: a mixed-version cluster must still
# complete. On clean shutdown every node must report its cumulative
# bytes-on-wire books, including per-session byte counters.
#
# Phase 2 exercises durable restart recovery: a 4-node cluster with
# --state-dir in which node 1 (the initial leader) is SIGKILLed while
# the DKG is provably mid-protocol, then restarted from its state
# directory — the DKG must still complete on every node, including the
# restarted one.
#
# Runs locally (./scripts/e2e_cluster.sh) and as the CI e2e job.
set -euo pipefail

N=4
T=1
SESSIONS=2
TIMEOUT="${E2E_TIMEOUT:-120s}"
BASE_PORT="${E2E_BASE_PORT:-9461}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building dkgnode"
go build -o "$workdir/dkgnode" ./cmd/dkgnode

echo "== generating key directory"
"$workdir/dkgnode" keygen -n "$N" -out "$workdir/keys.json" >/dev/null

peers=""
for i in $(seq 1 "$N"); do
  peers+="${peers:+,}$i=127.0.0.1:$((BASE_PORT + i))"
done

echo "== launching $N nodes ($SESSIONS sessions each, node 2 on -wire-v1, peers $peers)"
for i in $(seq 1 "$N"); do
  extra=()
  if [ "$i" -eq 2 ]; then
    extra+=(-wire-v1) # mixed-version cluster: one legacy-format node
  fi
  "$workdir/dkgnode" serve \
    -id "$i" -listen "127.0.0.1:$((BASE_PORT + i))" \
    -peers "$peers" -keys "$workdir/keys.json" \
    -n "$N" -t "$T" -sessions "$SESSIONS" -timeout "$TIMEOUT" \
    "${extra[@]}" \
    >"$workdir/node$i.out" 2>"$workdir/node$i.err" </dev/null &
  pids+=($!)
done

status=0
for idx in "${!pids[@]}"; do
  if ! wait "${pids[$idx]}"; then
    echo "!! node $((idx + 1)) exited non-zero" >&2
    status=1
  fi
done
pids=()
if [ "$status" -ne 0 ]; then
  tail -n +1 "$workdir"/node*.err >&2 || true
  exit "$status"
fi

echo "== validating session keys"
for s in $(seq 1 "$SESSIONS"); do
  keys=$(
    for i in $(seq 1 "$N"); do
      python3 -c '
import json, sys
session = int(sys.argv[2])
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc["session"] == session:
        print(doc["publicKey"])
' "$workdir/node$i.out" "$s"
    done
  )
  count=$(printf '%s\n' "$keys" | wc -l)
  uniq_count=$(printf '%s\n' "$keys" | sort -u | wc -l)
  if [ "$count" -ne "$N" ] || [ "$uniq_count" -ne 1 ]; then
    echo "!! session $s: expected $N matching keys, got $count keys ($uniq_count distinct)" >&2
    tail -n +1 "$workdir"/node*.out >&2 || true
    exit 1
  fi
  echo "   session $s: $N/$N nodes agree on $(printf '%s\n' "$keys" | head -1 | cut -c1-16)…"
done

cross=$(
  for s in $(seq 1 "$SESSIONS"); do
    python3 -c '
import json, sys
session = int(sys.argv[2])
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc["session"] == session:
        print(doc["publicKey"])
        break
' "$workdir/node1.out" "$s"
  done | sort -u | wc -l
)
if [ "$cross" -ne "$SESSIONS" ]; then
  echo "!! sessions produced identical keys ($cross distinct of $SESSIONS)" >&2
  exit 1
fi

echo "== validating wire-stats dump (per-session byte counters on clean shutdown)"
for i in $(seq 1 "$N"); do
  if ! grep -Eq "node $i: wire: [0-9]+ frames, [0-9]+ bytes sent" "$workdir/node$i.err"; then
    echo "!! node $i reported no cumulative wire stats" >&2
    cat "$workdir/node$i.err" >&2
    exit 1
  fi
  for s in $(seq 1 "$SESSIONS"); do
    if ! grep -Eq "node $i: wire: +session $s: [0-9]+ frames [0-9]+ bytes" "$workdir/node$i.err"; then
      echo "!! node $i reported no byte counter for session $s" >&2
      cat "$workdir/node$i.err" >&2
      exit 1
    fi
  done
done

echo "== e2e cluster OK: $SESSIONS concurrent sessions, one key per session, mixed v1/v2 wire formats"

# ---------------------------------------------------------------------
# Phase 2: kill one node mid-DKG and restart it from --state-dir.
#
# Choreography that makes "mid-protocol" deterministic rather than a
# timing race: launch only nodes 1 and 2 first. Two nodes are below
# the VSS echo threshold (ceil((n+t+1)/2) = 3), so no session can
# complete — whenever the kill lands, node 1 dies mid-dealing with a
# populated WAL. Then nodes 3 and 4 join, node 1 restarts from its
# state directory, resumes both sessions via snapshot+WAL replay plus
# the protocol's help machinery, and the whole cluster must finish.
RESTART_PORT=$((BASE_PORT + 10))
rpeers=""
for i in $(seq 1 "$N"); do
  rpeers+="${rpeers:+,}$i=127.0.0.1:$((RESTART_PORT + i))"
done

rlaunch() {
  local i=$1 tag=$2
  "$workdir/dkgnode" serve \
    -id "$i" -listen "127.0.0.1:$((RESTART_PORT + i))" \
    -peers "$rpeers" -keys "$workdir/keys.json" \
    -n "$N" -t "$T" -sessions "$SESSIONS" -timeout "$TIMEOUT" \
    -state-dir "$workdir/state$i" -snapshot-every 8 \
    >"$workdir/restart-node$i.$tag.out" 2>"$workdir/restart-node$i.$tag.err" </dev/null &
  rpids[$i]=$!
}

echo "== restart phase: launching nodes 1+2 (below echo threshold: guaranteed stuck mid-protocol)"
declare -a rpids
rlaunch 1 a
rlaunch 2 a
pids+=("${rpids[1]}" "${rpids[2]}")
sleep 2

echo "== SIGKILL node 1 mid-DKG"
kill -9 "${rpids[1]}" 2>/dev/null || { echo "!! node 1 exited before the kill (unexpected)" >&2; exit 1; }
wait "${rpids[1]}" 2>/dev/null || true
if [ ! -s "$workdir/state1/sess-1.wal" ]; then
  echo "!! node 1 left no WAL behind" >&2
  exit 1
fi

echo "== launching nodes 3+4 and restarting node 1 from its state directory"
rlaunch 3 a
rlaunch 4 a
sleep 0.3
rlaunch 1 b
pids+=("${rpids[1]}" "${rpids[3]}" "${rpids[4]}")

status=0
for i in 1 2 3 4; do
  if ! wait "${rpids[$i]}"; then
    echo "!! restart phase: node $i exited non-zero" >&2
    status=1
  fi
done
pids=()
if [ "$status" -ne 0 ]; then
  tail -n +1 "$workdir"/restart-node*.err >&2 || true
  exit "$status"
fi

if ! grep -q "restored" "$workdir/restart-node1.b.err"; then
  echo "!! restarted node did not restore from its state directory" >&2
  cat "$workdir/restart-node1.b.err" >&2
  exit 1
fi

echo "== validating restart-phase session keys"
for s in $(seq 1 "$SESSIONS"); do
  keys=$(
    for i in $(seq 1 "$N"); do
      cat "$workdir/restart-node$i".*.out 2>/dev/null | python3 -c '
import json, sys
session = int(sys.argv[1])
for line in sys.stdin:
    doc = json.loads(line)
    if doc["session"] == session:
        print(doc["publicKey"])
        break
' "$s"
    done
  )
  count=$(printf '%s\n' "$keys" | wc -l)
  uniq_count=$(printf '%s\n' "$keys" | sort -u | wc -l)
  if [ "$count" -ne "$N" ] || [ "$uniq_count" -ne 1 ]; then
    echo "!! restart session $s: expected $N matching keys, got $count keys ($uniq_count distinct)" >&2
    tail -n +1 "$workdir"/restart-node*.out >&2 || true
    exit 1
  fi
  echo "   restart session $s: $N/$N nodes agree on $(printf '%s\n' "$keys" | head -1 | cut -c1-16)…"
done

echo "== e2e restart OK: node 1 SIGKILLed mid-DKG, restarted from --state-dir, cluster completed"

# ---------------------------------------------------------------------
# Phase 3: threshold data plane. A 4-node cluster generates one key and
# keeps serving it (-client-listen implies linger); an external client
# — holding no key material — connects to node 1's client endpoint,
# requests a signature, an encrypt/decrypt round-trip and 3 beacon
# rounds, and verifies every result it can check publicly. The client
# binary fails non-zero on any verification miss, so the gate here is
# its exit status plus the per-operation JSON lines. Nodes then get
# SIGTERM and must shut down cleanly (exit 0).
DP_PORT=$((BASE_PORT + 20))
dpeers=""
for i in $(seq 1 "$N"); do
  dpeers+="${dpeers:+,}$i=127.0.0.1:$((DP_PORT + i))"
done

METRICS_ADDR="127.0.0.1:$((DP_PORT + 30))"
echo "== data-plane phase: launching $N serving nodes (client protocol on 127.0.0.1:$((DP_PORT + 10 + 1)).., node 1 metrics on $METRICS_ADDR)"
declare -a dpids
for i in $(seq 1 "$N"); do
  extra=()
  if [ "$i" -eq 1 ]; then
    # Node 1 carries the observability surface: the live introspection
    # endpoint (scraped mid-run below) and the machine-readable wire
    # books (validated after clean shutdown).
    extra+=(-metrics-listen "$METRICS_ADDR" -wire-stats-json "$workdir/dp-node1-wire.json")
  fi
  "$workdir/dkgnode" serve \
    -id "$i" -listen "127.0.0.1:$((DP_PORT + i))" \
    -peers "$dpeers" -keys "$workdir/keys.json" \
    -n "$N" -t "$T" -sessions 1 -timeout "$TIMEOUT" \
    -client-listen "127.0.0.1:$((DP_PORT + 10 + i))" \
    "${extra[@]}" \
    >"$workdir/dp-node$i.out" 2>"$workdir/dp-node$i.err" </dev/null &
  dpids[$i]=$!
  pids+=("${dpids[$i]}")
done

echo "== waiting for key 1 to reach every node"
for i in $(seq 1 "$N"); do
  for _ in $(seq 1 100); do
    grep -q '"publicKey"' "$workdir/dp-node$i.out" 2>/dev/null && break
    sleep 0.2
  done
  if ! grep -q '"publicKey"' "$workdir/dp-node$i.out" 2>/dev/null; then
    echo "!! data-plane phase: node $i never completed the DKG" >&2
    tail -n +1 "$workdir"/dp-node*.err >&2 || true
    exit 1
  fi
done

echo "== external client: sign + decrypt + 3 beacon rounds against node 1"
if ! "$workdir/dkgnode" client \
    -addr "127.0.0.1:$((DP_PORT + 10 + 1))" -key 1 \
    -sign "e2e data plane message" -decrypt -beacon 3 \
    >"$workdir/dp-client.out" 2>"$workdir/dp-client.err"; then
  echo "!! data-plane client failed" >&2
  cat "$workdir/dp-client.err" >&2
  tail -n +1 "$workdir"/dp-node*.err >&2 || true
  exit 1
fi
for op in sign decrypt beacon; do
  case "$op" in
    sign)    want='"op":"sign".*"verified":true'; count=1 ;;
    decrypt) want='"op":"decrypt".*"roundTrip":true'; count=1 ;;
    beacon)  want='"op":"beacon".*"verified":true'; count=3 ;;
  esac
  got=$(grep -Ec "$want" "$workdir/dp-client.out" || true)
  if [ "$got" -ne "$count" ]; then
    echo "!! data-plane client: expected $count verified $op result(s), got $got" >&2
    cat "$workdir/dp-client.out" >&2
    exit 1
  fi
done
if ! grep -q "$(grep -o '"publicKey":"[^"]*"' "$workdir/dp-node1.out" | head -1)" "$workdir/dp-client.out"; then
  echo "!! data-plane client reported a different public key than the cluster" >&2
  exit 1
fi

echo "== scraping node 1 introspection endpoint mid-run"
curl -fsS "http://$METRICS_ADDR/metrics" >"$workdir/dp-metrics.txt"
# Core series from every subsystem must exist and be nonzero after one
# completed DKG plus real client traffic.
for series in \
    engine_sessions_completed_total \
    vss_completions_total \
    transport_frames_total \
    dataplane_requests_total \
    dataplane_batches_total; do
  if ! awk -v s="$series" '$1 == s && $2 + 0 > 0 { found = 1 } END { exit !found }' "$workdir/dp-metrics.txt"; then
    echo "!! /metrics: series $series missing or zero" >&2
    cat "$workdir/dp-metrics.txt" >&2
    exit 1
  fi
done
curl -fsS "http://$METRICS_ADDR/sessions" | python3 -c '
import json, sys
ss = json.load(sys.stdin)
assert any(s["state"] == "completed" for s in ss), ss
'
curl -fsS "http://$METRICS_ADDR/keys" | python3 -c '
import json, sys
ks = json.load(sys.stdin)
assert any(k["state"] == "serving" and k["requests_total"] > 0 for k in ks), ks
'
"$workdir/dkgnode" top -addr "$METRICS_ADDR" >"$workdir/dp-top.out"
grep -q "completed" "$workdir/dp-top.out" || {
  echo "!! dkgnode top did not show a completed session" >&2
  cat "$workdir/dp-top.out" >&2
  exit 1
}
echo "   /metrics, /sessions, /keys and dkgnode top all OK"

echo "== SIGTERM: serving nodes must shut down cleanly"
for i in $(seq 1 "$N"); do
  kill -TERM "${dpids[$i]}" 2>/dev/null || true
done
status=0
for i in $(seq 1 "$N"); do
  if ! wait "${dpids[$i]}"; then
    echo "!! data-plane phase: node $i exited non-zero after SIGTERM" >&2
    status=1
  fi
done
pids=()
if [ "$status" -ne 0 ]; then
  tail -n +1 "$workdir"/dp-node*.err >&2 || true
  exit "$status"
fi

echo "== validating wire-stats JSON dump"
python3 -c '
import json, sys
ws = json.load(open(sys.argv[1]))
assert ws["Frames"] > 0 and ws["FrameBytes"] > 0, ws
' "$workdir/dp-node1-wire.json"
# The stderr text dump must survive alongside the JSON twin.
grep -Eq "node 1: wire: [0-9]+ frames, [0-9]+ bytes sent" "$workdir/dp-node1.err" || {
  echo "!! node 1 stderr wire dump missing alongside -wire-stats-json" >&2
  exit 1
}

echo "== e2e data plane OK: external client verified sign/decrypt/beacon against the serving cluster"

#!/usr/bin/env bash
# bench_gate.sh OLD NEW — regression gate for the perf-tracked
# benchmarks. Compares the ns/op geomean of the
# E14/E15/E17/E18/E19/E20/E22 benchmarks (backend crypto hot paths,
# session throughput, batch verification, core-scaling verification
# pipeline, bytes-on-wire runs, data-plane serving, certificate-mode
# scale sweeps) between a baseline
# run and a new run, and fails when the new run is more than 10%
# slower. The E20 data-plane results additionally carry absolute
# acceptance gates (taken from the new run alone): ≥10k sustained
# sign req/s per key at n=7 on p256, and batched (depth=8) at least
# 2x the unbatched (depth=1) req/s. benchstat remains the
# human-readable report; this gate is the machine-readable pass/fail.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <baseline.txt> <new.txt>" >&2
  exit 2
fi

awk '
  /^BenchmarkE(1(4|5|7|8|9)|2(0|2))/ && $3 > 0 {
    # benchmark line: name  iterations  value ns/op  [extra metrics…]
    # Repeated -count samples of one benchmark accumulate into a
    # per-name geometric mean before names are compared, so noise
    # within a run averages out.
    if (FILENAME == ARGV[1]) { oldsum[$1] += log($3); oldn[$1]++ }
    else { newsum[$1] += log($3); newn[$1]++ }
  }
  END {
    for (name in newsum) {
      if (name in oldsum) {
        sum += newsum[name] / newn[name] - oldsum[name] / oldn[name]
        n++
      }
    }
    if (n == 0) { print "bench gate: no comparable E14–E22 results; skipping"; exit 0 }
    ratio = exp(sum / n)
    printf "bench gate: E14–E22 ns/op geomean ratio new/baseline = %.3f over %d benchmarks\n", ratio, n
    if (ratio > 1.10) {
      printf "bench gate: FAIL — >10%% regression (ratio %.3f)\n", ratio
      exit 1
    }
    print "bench gate: OK"
  }
' "$1" "$2"

# Absolute E20 acceptance gates, evaluated on the new run alone.
# Repeated -count samples average (arithmetic mean of req/s) per name.
awk '
  /^BenchmarkE20DataPlane\/p256\/n=7\/depth=1/ && $6 == "req/s" { d1 += $5; d1n++ }
  /^BenchmarkE20DataPlane\/p256\/n=7\/depth=8/ && $6 == "req/s" { d8 += $5; d8n++ }
  END {
    if (d8n == 0) { print "bench gate: no E20 p256 results in new run; skipping absolute gates"; exit 0 }
    d8 /= d8n
    printf "bench gate: E20 p256 sustained (depth=8) = %.0f req/s\n", d8
    if (d8 < 10000) {
      printf "bench gate: FAIL — E20 p256 sustained %.0f req/s below 10000 floor\n", d8
      exit 1
    }
    if (d1n > 0) {
      d1 /= d1n
      printf "bench gate: E20 p256 batched/unbatched = %.2fx (depth=1 %.0f req/s)\n", d8 / d1, d1
      if (d8 < 2 * d1) {
        printf "bench gate: FAIL — batched depth=8 under 2x unbatched depth=1\n"
        exit 1
      }
    }
    print "bench gate: E20 absolute gates OK"
  }
' "$2"

# E21 telemetry-overhead gate, evaluated on the new run alone. Each
# E21 sample reports overhead = (telemetry on)/(telemetry off)
# wall-clock measured pairwise inside one process, so no baseline file
# is needed. The geomean across all samples (both sub-benchmarks ×
# -count repeats) must stay within 2%.
awk '
  /^BenchmarkE21TelemetryOverhead\// {
    for (i = 4; i < NF; i++) {
      if ($(i + 1) == "overhead" && $i > 0) { sum += log($i); n++ }
    }
  }
  END {
    if (n == 0) { print "bench gate: no E21 overhead results in new run; skipping telemetry gate"; exit 0 }
    ratio = exp(sum / n)
    printf "bench gate: E21 telemetry overhead geomean = %.3f over %d samples\n", ratio, n
    if (ratio > 1.02) {
      printf "bench gate: FAIL — telemetry-on overhead %.3f exceeds 1.02\n", ratio
      exit 1
    }
    print "bench gate: E21 telemetry gate OK"
  }
' "$2"

# E22 subquadratic-fit gate, evaluated on the new run alone at the
# reduced sizes CI can afford: on the test256 backend, wire bytes must
# fit n^k with k < 1.5 between the cert-mode n=64 and n=128 runs
# (sizes where the signer committee is a strict subsample of the
# roster), while the flood baseline between n=16 and n=64 must stay
# above 1.6 — if the flood ever loses its quadratic, the comparison
# itself is stale and needs re-deriving. The parsed per-size bytes are
# also emitted as BENCH_E22.json next to the new-run file, so the
# recorded scale curve rides along with the bench artifacts.
awk -v json="$(dirname "$2")/BENCH_E22.json" '
  /^BenchmarkE22Scale\/test256\// {
    split($1, path, "/")           # BenchmarkE22Scale / test256 / mode / n=X
    mode = path[3]
    sub(/^n=/, "", path[4]); sub(/-[0-9]+$/, "", path[4])
    n = path[4] + 0
    for (i = 4; i < NF; i++) {
      if ($(i + 1) == "wire-bytes") bytes[mode, n] = $i
    }
    if (!(mode in seen)) order[++modes] = mode
    seen[mode] = 1
    sizes[n] = 1
  }
  END {
    if (!(("cert", 64) in bytes) || !(("cert", 128) in bytes)) {
      print "bench gate: no E22 cert n=64/n=128 results in new run; skipping scale gate"
      exit 0
    }
    certfit = log(bytes["cert", 128] / bytes["cert", 64]) / log(128 / 64)
    printf "bench gate: E22 cert wire bytes fit n^%.2f (n=64 -> n=128)\n", certfit
    fail = 0
    if (certfit >= 1.5) {
      printf "bench gate: FAIL — E22 cert fit n^%.2f not subquadratic (< 1.5)\n", certfit
      fail = 1
    }
    if ((("flood", 16) in bytes) && (("flood", 64) in bytes)) {
      floodfit = log(bytes["flood", 64] / bytes["flood", 16]) / log(64 / 16)
      printf "bench gate: E22 flood wire bytes fit n^%.2f (n=16 -> n=64)\n", floodfit
      if (floodfit <= 1.6) {
        printf "bench gate: FAIL — E22 flood baseline fit n^%.2f lost its quadratic\n", floodfit
        fail = 1
      }
    }
    # Emit the recorded curve as JSON: {"mode": {"n": bytes, ...}, ...}
    printf "{" > json
    for (m = 1; m <= modes; m++) {
      if (m > 1) printf "," >> json
      printf "\"%s\":{", order[m] >> json
      first = 1
      for (n = 1; n <= 1024; n++) {
        if ((order[m], n) in bytes) {
          if (!first) printf "," >> json
          printf "\"%d\":%d", n, bytes[order[m], n] >> json
          first = 0
        }
      }
      printf "}" >> json
    }
    print "}" >> json
    printf "bench gate: wrote %s\n", json
    if (fail) exit 1
    print "bench gate: E22 scale gate OK"
  }
' "$2"

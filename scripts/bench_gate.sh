#!/usr/bin/env bash
# bench_gate.sh OLD NEW — regression gate for the perf-tracked
# benchmarks. Compares the ns/op geomean of the E14/E15/E17/E18/E19
# benchmarks (backend crypto hot paths, session throughput, batch
# verification, core-scaling verification pipeline, bytes-on-wire
# runs) between a baseline
# run and a new run, and fails when the new run is more than 10%
# slower. benchstat remains the human-readable report; this gate is
# the machine-readable pass/fail.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <baseline.txt> <new.txt>" >&2
  exit 2
fi

awk '
  /^BenchmarkE1(4|5|7|8|9)/ && $3 > 0 {
    # benchmark line: name  iterations  value ns/op  [extra metrics…]
    # Repeated -count samples of one benchmark accumulate into a
    # per-name geometric mean before names are compared, so noise
    # within a run averages out.
    if (FILENAME == ARGV[1]) { oldsum[$1] += log($3); oldn[$1]++ }
    else { newsum[$1] += log($3); newn[$1]++ }
  }
  END {
    for (name in newsum) {
      if (name in oldsum) {
        sum += newsum[name] / newn[name] - oldsum[name] / oldn[name]
        n++
      }
    }
    if (n == 0) { print "bench gate: no comparable E14/E15/E17/E18/E19 results; skipping"; exit 0 }
    ratio = exp(sum / n)
    printf "bench gate: E14/E15/E17/E18/E19 ns/op geomean ratio new/baseline = %.3f over %d benchmarks\n", ratio, n
    if (ratio > 1.10) {
      printf "bench gate: FAIL — >10%% regression (ratio %.3f)\n", ratio
      exit 1
    }
    print "bench gate: OK"
  }
' "$1" "$2"

// Group membership demo (§6 of the paper): agree on modification
// proposals over reliable broadcast, admit a new node mid-phase by
// transferring subshares (no renewal needed), and remove a node at a
// phase boundary with a threshold adjustment.
//
// This example drives the protocol packages directly (the same ones
// the public façade wraps) because membership surgery is an
// operator-level workflow.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/groupmod"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/randutil"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, t = 7, 2
	gr := group.Test256()

	fmt.Println("== initial DKG: 7 nodes, t=2 ==")
	dres, err := harness.RunDKG(harness.DKGOptions{N: n, T: t, Seed: 3, Group: gr})
	if err != nil {
		return err
	}
	groupV := dres.Completed[1].V
	fmt.Printf("public key: %s…\n\n", groupV.PublicKey().String()[:24])

	fmt.Println("== §6.1 agreement: propose adding node 8 ==")
	change, err := groupmod.Apply(
		groupmod.Group{N: n, T: t, F: 0, Members: []msg.NodeID{1, 2, 3, 4, 5, 6, 7}},
		[]groupmod.Proposal{{Kind: groupmod.AddNode, Node: 8}},
	)
	if err != nil {
		return err
	}
	fmt.Printf("agreed change: n %d→%d, t %d→%d, f %d→%d\n\n",
		change.Old.N, change.New.N, change.Old.T, change.New.T, change.Old.F, change.New.F)

	fmt.Println("== §6.2 node addition: members push subshares to node 8 ==")
	newIdx := msg.NodeID(8)
	var joined *groupmod.JoinedEvent
	joiner, err := groupmod.NewJoiner(gr, n, t, newIdx, groupV.Eval(int64(newIdx)), func(ev groupmod.JoinedEvent) {
		joined = &ev
	})
	if err != nil {
		return err
	}
	dres.Net.Register(newIdx, joiner)
	for id := range dres.Nodes {
		cfg := groupmod.AdditionConfig{
			DKG: dkg.Params{
				Group: gr, N: n, T: t,
				Directory: dres.Directory, SignKey: dres.Privs[id],
			},
			Tau:      100,
			NewNode:  newIdx,
			CurrentV: groupV,
			Rand:     randutil.NewReader(500 + uint64(id)),
		}
		eng, err := groupmod.NewAdditionEngine(cfg, id, dres.Net.Env(id), dres.Completed[id].Share)
		if err != nil {
			return err
		}
		dres.Net.Register(id, adapter{eng})
		if err := eng.Start(); err != nil {
			return err
		}
	}
	dres.Net.RunUntil(func() bool { return joined != nil }, 0)
	dres.Net.Run(0)
	if joined == nil {
		return fmt.Errorf("joiner never received a share")
	}
	fmt.Printf("node 8 joined; its share verifies against the group commitment: %v\n",
		groupV.VerifyShare(int64(newIdx), joined.Share))
	fmt.Println("existing shares unchanged — no renewal was needed")

	fmt.Println("\n== §6.3/§6.4 removal at phase boundary ==")
	change2, err := groupmod.Apply(
		groupmod.Group{N: 8, T: t, F: 0, Members: []msg.NodeID{1, 2, 3, 4, 5, 6, 7, 8}},
		[]groupmod.Proposal{{Kind: groupmod.RemoveNode, Node: 5, AffectThreshold: true}},
	)
	if err != nil {
		return err
	}
	fmt.Printf("removal agreed: n %d→%d, t %d→%d; survivors renumbered:\n",
		change2.Old.N, change2.New.N, change2.Old.T, change2.New.T)
	for _, m := range change2.New.Members {
		fmt.Printf("  old index %d → new index %d\n", m, change2.IndexMap[m])
	}
	fmt.Println("(the next share renewal under the new roster invalidates node 5's share —")
	fmt.Println(" see groupmod.TestRemovalWithRenewalReindex for the full protocol run)")
	return nil
}

type adapter struct{ eng *groupmod.AdditionEngine }

func (a adapter) HandleMessage(from msg.NodeID, body msg.Body) { a.eng.HandleMessage(from, body) }
func (a adapter) HandleTimer(id uint64)                        { a.eng.HandleTimer(id) }
func (a adapter) HandleRecover()                               { a.eng.HandleRecover() }

// Random beacon (the distributed coin-tossing motivation of §1): each
// round runs a fresh DKG — nobody knows the round secret while it is
// being generated — and then the nodes open it by pooling t+1 shares.
// Hashing the opened value gives a public random output nobody could
// predict or (mostly) bias.
//
//	go run ./examples/beacon
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"

	"hybriddkg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hybriddkg.NewCluster(hybriddkg.Options{N: 7, T: 2, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Println("round | beacon output (first 16 hex) | coin")
	fmt.Println("------+------------------------------+-----")
	heads := 0
	const rounds = 8
	for round := uint64(1); round <= rounds; round++ {
		// Commit: a fresh distributed secret nobody knows.
		key, err := cluster.GenerateKey()
		if err != nil {
			return err
		}
		// Reveal: t+1 nodes pool shares to open it (the Rec protocol).
		secret, err := cluster.Reconstruct(key)
		if err != nil {
			return err
		}
		// The beacon output binds the round number and the opening.
		h := sha256.New()
		var rb [8]byte
		binary.BigEndian.PutUint64(rb[:], round)
		h.Write(rb[:])
		h.Write(secret.Bytes())
		out := h.Sum(nil)
		coin := "tails"
		if out[0]&1 == 1 {
			coin = "heads"
			heads++
		}
		fmt.Printf("%5d | %x | %s\n", round, out[:8], coin)
	}
	fmt.Printf("\n%d/%d heads. Caveat (documented in EXPERIMENTS.md): Feldman-based\n", heads, rounds)
	fmt.Println("DKG lets an adversary bias a few output bits by selective aborts")
	fmt.Println("(Gennaro et al.); acceptable for lotteries, not for key generation.")
	return nil
}

// Random beacon (the distributed coin-tossing motivation of §1): the
// nodes serve numbered beacon rounds from one long-lived key. Each
// round is backed by a fresh distributed ephemeral secret — nobody
// knows it while it is being generated — which t+1 nodes then open by
// pooling shares. Hashing the round number with the opened value
// gives a public random output nobody could predict or (mostly) bias.
//
//	go run ./examples/beacon
package main

import (
	"context"
	"fmt"
	"log"

	"hybriddkg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 7, T: 2},
		hybriddkg.WithSeed(7),
		hybriddkg.WithBeaconAhead(2)) // provision rounds ahead of demand
	if err != nil {
		return err
	}
	defer net.Close()
	ctx := context.Background()

	// One DKG up front; every round reuses the serving quorum.
	key, err := net.GenerateKey(ctx)
	if err != nil {
		return err
	}
	fmt.Println("round | beacon output (first 16 hex) | coin")
	fmt.Println("------+------------------------------+-----")
	heads := 0
	const rounds = 8
	for round := uint64(1); round <= rounds; round++ {
		out, err := key.Beacon(ctx, round)
		if err != nil {
			return err
		}
		// Anyone can audit the round: the opened ephemeral secret
		// must match the round's published ephemeral public key.
		if !net.Group().GExp(out.Opened).Equal(out.EphemeralPK) {
			return fmt.Errorf("round %d: opened value does not match commitment", round)
		}
		coin := "tails"
		if out.Output[0]&1 == 1 {
			coin = "heads"
			heads++
		}
		fmt.Printf("%5d | %x | %s\n", round, out.Output[:8], coin)
	}
	fmt.Printf("\n%d/%d heads. Caveat (documented in EXPERIMENTS.md): Feldman-based\n", heads, rounds)
	fmt.Println("DKG lets an adversary bias a few output bits by selective aborts")
	fmt.Println("(Gennaro et al.); acceptable for lotteries, not for key generation.")
	return nil
}

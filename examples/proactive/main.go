// Proactive security demo (§5 of the paper): a mobile adversary
// compromises up to t nodes per phase. Periodic share renewal makes
// the shares it stole in earlier phases useless — even though it has
// seen more than t shares in total, they never belong to the same
// sharing polynomial.
//
//	go run ./examples/proactive
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"hybriddkg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, t = 7, 2
	net, err := hybriddkg.New(hybriddkg.Roster{N: n, T: t}, hybriddkg.WithSeed(99))
	if err != nil {
		return err
	}
	defer net.Close()
	ctx := context.Background()

	key, err := net.GenerateKey(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("phase 0: key generated, public key %s…\n", key.PublicKey().String()[:24])

	// The mobile adversary steals t shares per phase, from different
	// nodes each time.
	stolen := make(map[int]*big.Int)
	steal := func(phase int, ids ...int) {
		for _, id := range ids {
			stolen[id] = new(big.Int).Set(key.Shares()[hybriddkg.NodeID(id)])
			fmt.Printf("phase %d: adversary compromises node %d and steals its share\n", phase, id)
		}
	}

	steal(0, 1, 2)
	for phase := 1; phase <= 3; phase++ {
		if err := key.Renew(ctx); err != nil {
			return err
		}
		fmt.Printf("phase %d: shares renewed, public key unchanged: %v\n",
			phase, key.PublicKey() != nil)
		switch phase {
		case 1:
			steal(phase, 3, 4)
		case 2:
			steal(phase, 5, 6)
		}
	}

	// The adversary now holds 6 > t shares — but from three different
	// phases. Interpolating any t+1 of them yields garbage.
	fmt.Printf("\nadversary accumulated %d stolen shares across phases (t=%d)\n", len(stolen), t)
	pts := make(map[hybriddkg.NodeID]*big.Int, t+1)
	for id, s := range stolen {
		pts[hybriddkg.NodeID(id)] = s
		if len(pts) == t+1 {
			break
		}
	}
	guess := interpolate(net.Group().Q(), pts)
	if net.Group().GExp(guess).Equal(key.PublicKey()) {
		return fmt.Errorf("ADVERSARY WON: cross-phase shares reconstructed the key")
	}
	fmt.Println("cross-phase interpolation fails: stolen shares are from independent sharings")

	// The honest system still works: current shares sign fine.
	sig, err := key.Sign(ctx, []byte("still alive after three renewals"))
	if err != nil {
		return err
	}
	fmt.Printf("current quorum still signs: verified=%v\n",
		key.Verify([]byte("still alive after three renewals"), sig))
	return nil
}

// interpolate runs Lagrange-at-0 over the stolen points.
func interpolate(q *big.Int, shares map[hybriddkg.NodeID]*big.Int) *big.Int {
	acc := new(big.Int)
	for i, yi := range shares {
		num, den := big.NewInt(1), big.NewInt(1)
		for j := range shares {
			if i == j {
				continue
			}
			num.Mul(num, big.NewInt(int64(-j))).Mod(num, q)
			den.Mul(den, big.NewInt(int64(i-j))).Mod(den, q)
		}
		li := new(big.Int).Mul(num, new(big.Int).ModInverse(den, q))
		acc.Add(acc, li.Mul(li.Mod(li, q), yi)).Mod(acc, q)
	}
	return acc
}

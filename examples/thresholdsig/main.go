// Threshold certificate authority (the paper's IBC/threshold-PKC
// motivation, §1): a 10-node CA with t = 2 Byzantine tolerance and
// f = 1 crash allowance signs certificates. No single machine ever
// holds the CA key; signing works even while a node is down.
//
// Certificate requests arrive in bursts, so the CA batches them:
// same-key sign requests coalesce into one partial round-trip across
// the quorum instead of one per certificate.
//
//	go run ./examples/thresholdsig
package main

import (
	"context"
	"fmt"
	"log"

	"hybriddkg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// n ≥ 3t + 2f + 1 → 10 ≥ 3·2 + 2·1 + 1 = 9 ✓
	net, err := hybriddkg.New(hybriddkg.Roster{N: 10, T: 2, F: 1},
		hybriddkg.WithSeed(11),
		hybriddkg.WithNonceReservoir(8), // absorb certificate bursts
		hybriddkg.WithBatchWindow(16))
	if err != nil {
		return err
	}
	defer net.Close()
	ctx := context.Background()

	// Eager serving: provision the signing-nonce reservoir before the
	// first certificate request arrives.
	caKey, err := net.GenerateKey(ctx, hybriddkg.WithEagerServing())
	if err != nil {
		return err
	}
	fmt.Printf("threshold CA key generated (public key %s…)\n", caKey.PublicKey().String()[:24])

	// A burst of requests, issued as one batch: one fan-out round
	// trip produces all three signatures.
	certs := [][]byte{
		[]byte("CN=alice,O=example"),
		[]byte("CN=bob,O=example"),
		[]byte("CN=charlie,O=example"),
	}
	sigs, err := caKey.SignBatch(ctx, certs)
	if err != nil {
		return err
	}
	for i, cert := range certs {
		fmt.Printf("  issued %-24s verified=%v\n", cert, caKey.Verify(cert, sigs[i]))
	}
	st := net.ServiceStats(1)
	fmt.Printf("batching: %d certificates served in %d partial round-trip(s)\n",
		st.Items, st.Batches)

	// One node crashes — inside the f budget, the CA keeps issuing.
	fmt.Println("node 10 crashes (within the f = 1 crash budget)…")
	net.Crash(10)
	late := []byte("CN=dave,O=example")
	sig, err := caKey.Sign(ctx, late)
	if err != nil {
		return err
	}
	fmt.Printf("  issued %-24s verified=%v (9 live nodes)\n", late, caKey.Verify(late, sig))

	net.Recover(10)
	fmt.Println("node 10 recovered; back to full strength")
	return nil
}

// Threshold certificate authority (the paper's IBC/threshold-PKC
// motivation, §1): a 10-node CA with t = 2 Byzantine tolerance and
// f = 1 crash allowance signs certificates. No single machine ever
// holds the CA key; signing works even while a node is down.
//
//	go run ./examples/thresholdsig
package main

import (
	"fmt"
	"log"
)

import "hybriddkg"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// n ≥ 3t + 2f + 1 → 10 ≥ 3·2 + 2·1 + 1 = 9 ✓
	cluster, err := hybriddkg.NewCluster(hybriddkg.Options{N: 10, T: 2, F: 1, Seed: 11})
	if err != nil {
		return err
	}
	caKey, err := cluster.GenerateKey()
	if err != nil {
		return err
	}
	fmt.Printf("threshold CA key generated (public key %s…)\n", caKey.PublicKey.String()[:24])

	certs := []string{
		"CN=alice,O=example",
		"CN=bob,O=example",
		"CN=charlie,O=example",
	}
	for _, cert := range certs {
		sig, err := cluster.Sign(caKey, []byte(cert))
		if err != nil {
			return err
		}
		fmt.Printf("  issued %-24s verified=%v\n", cert, caKey.Verify([]byte(cert), sig))
	}

	// One node crashes — inside the f budget, the CA keeps issuing.
	fmt.Println("node 10 crashes (within the f = 1 crash budget)…")
	cluster.Crash(10)
	late := []byte("CN=dave,O=example")
	sig, err := cluster.Sign(caKey, late)
	if err != nil {
		return err
	}
	fmt.Printf("  issued %-24s verified=%v (9 live nodes)\n", late, caKey.Verify(late, sig))

	cluster.Recover(10)
	fmt.Println("node 10 recovered; back to full strength")
	return nil
}

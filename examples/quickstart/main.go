// Quickstart: run a 7-node distributed key generation (t = 2
// Byzantine tolerance), threshold-sign a message with the resulting
// key, and verify the signature like any ordinary Schnorr verifier
// would.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hybriddkg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A Network is an in-memory deployment of n protocol nodes over
	// the deterministic asynchronous network simulator, each running
	// a data-plane service in front of its share store.
	net, err := hybriddkg.New(hybriddkg.Roster{N: 7, T: 2}, hybriddkg.WithSeed(42))
	if err != nil {
		return err
	}
	defer net.Close()
	ctx := context.Background()

	// One full DKG: n parallel verifiable secret sharings, leader
	// agreement on a set of t+1 of them, share summation. Nobody ever
	// saw the secret key. The result is a long-lived Key that the
	// nodes serve requests against.
	key, err := net.GenerateKey(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("distributed key generated (state: %v)\n", key.State())
	fmt.Printf("  public key: %s…\n", key.PublicKey().String()[:32])
	fmt.Printf("  shares:     %d (one per node, never pooled)\n", len(key.Shares()))

	// Every share is publicly verifiable against the Feldman
	// commitment the DKG published.
	for id, share := range key.Shares() {
		if !key.Commitment().VerifyShare(int64(id), share) {
			return fmt.Errorf("share %d failed verification", id)
		}
	}
	fmt.Println("  all shares verify against the public commitment")

	// Threshold Schnorr: the aggregator fans the request out, any
	// t+1 = 3 nodes answer with partials, and the combined output is
	// a standard Schnorr signature.
	message := []byte("hello from a dealerless threshold quorum")
	sig, err := key.Sign(ctx, message)
	if err != nil {
		return err
	}
	if !key.Verify(message, sig) {
		return fmt.Errorf("signature did not verify")
	}
	fmt.Printf("threshold signature produced and verified (R=%s…)\n", sig.R.String()[:16])
	fmt.Printf("key is now %v: further Sign/Decrypt/Beacon calls reuse the same quorum\n", key.State())

	// Sanity: the interpolated secret matches the public key (never
	// do this outside demos — the whole point is nobody reconstructs).
	secret, err := key.Reconstruct()
	if err != nil {
		return err
	}
	if !net.Group().GExp(secret).Equal(key.PublicKey()) {
		return fmt.Errorf("reconstructed secret does not match public key")
	}
	fmt.Println("consistency check: t+1 shares interpolate to the committed secret")

	st := net.Stats()
	fmt.Printf("network cost: %d messages, %d bytes (simulated asynchronous network)\n",
		st.TotalMsgs, st.TotalBytes)
	return nil
}

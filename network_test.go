package hybriddkg_test

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"hybriddkg"
)

func TestNetworkKeyLifecycle(t *testing.T) {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 7, T: 2}, hybriddkg.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ctx := context.Background()

	key, err := net.GenerateKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if key.State() != hybriddkg.KeyReady {
		t.Fatalf("fresh key state = %v, want ready", key.State())
	}

	message := []byte("one key, many operations")
	sig, err := key.Sign(ctx, message)
	if err != nil {
		t.Fatal(err)
	}
	if !key.Verify(message, sig) {
		t.Fatal("signature rejected")
	}
	if key.Verify([]byte("other"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	if key.State() != hybriddkg.KeyServing {
		t.Fatalf("post-sign state = %v, want serving", key.State())
	}

	m := net.Group().GExp(big.NewInt(424242))
	ct, err := key.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(ctx, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decrypt mismatch")
	}

	var prev [32]byte
	for round := uint64(1); round <= 2; round++ {
		out, err := key.Beacon(ctx, round)
		if err != nil {
			t.Fatalf("beacon round %d: %v", round, err)
		}
		if out.Output == prev {
			t.Fatalf("round %d repeated the previous output", round)
		}
		prev = out.Output
	}

	// Two keys serve independently.
	key2, err := net.GenerateKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if key2.PublicKey().Equal(key.PublicKey()) {
		t.Fatal("two DKGs produced the same key")
	}
	sig2, err := key2.Sign(ctx, message)
	if err != nil {
		t.Fatal(err)
	}
	if !key2.Verify(message, sig2) || key.Verify(message, sig2) {
		t.Fatal("keys are not independent")
	}

	// Retiring sheds new work but the other key keeps serving.
	key.Retire()
	if key.State() != hybriddkg.KeyRetiring {
		t.Fatalf("state after Retire = %v", key.State())
	}
	if _, err := key.Sign(ctx, []byte("too late")); !errors.Is(err, hybriddkg.ErrRetiring) {
		t.Fatalf("retiring key accepted work: %v", err)
	}
	if _, err := key2.Sign(ctx, []byte("still open")); err != nil {
		t.Fatalf("unrelated key affected by retirement: %v", err)
	}
}

func TestNetworkSignBatch(t *testing.T) {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 4, T: 1},
		hybriddkg.WithSeed(22), hybriddkg.WithNonceReservoir(8), hybriddkg.WithBatchWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ctx := context.Background()

	key, err := net.GenerateKey(ctx, hybriddkg.WithEagerServing())
	if err != nil {
		t.Fatal(err)
	}
	if key.State() != hybriddkg.KeyServing {
		t.Fatalf("eager key state = %v, want serving", key.State())
	}
	msgs := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	sigs, err := key.SignBatch(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sg := range sigs {
		if !key.Verify(msgs[i], sg) {
			t.Fatalf("batch signature %d rejected", i)
		}
		for j := 0; j < i; j++ {
			if sigs[j].R.Equal(sg.R) {
				t.Fatalf("signatures %d and %d share a nonce", j, i)
			}
		}
	}
	st := net.ServiceStats(1)
	if st.Batches != 1 || st.Items != uint64(len(msgs)) {
		t.Fatalf("batch accounting: %+v", st)
	}
}

func TestNetworkOptionsCompose(t *testing.T) {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 4, T: 1},
		hybriddkg.WithSeed(23),
		hybriddkg.WithGroup("p256"),
		hybriddkg.WithHashedEcho(),
		hybriddkg.WithDedupDealings(),
		hybriddkg.WithCompressedWire(),
		hybriddkg.WithParallelVerify(2))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ctx := context.Background()
	key, err := net.GenerateKey(ctx, hybriddkg.WithAggregator(3))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := key.Sign(ctx, []byte("composed"))
	if err != nil {
		t.Fatal(err)
	}
	if !key.Verify([]byte("composed"), sig) {
		t.Fatal("signature rejected")
	}
	if ps, ok := net.VerifyStats(); !ok || ps.Workers != 2 {
		t.Fatalf("verify pool not wired: %+v ok=%v", ps, ok)
	}
	// Node 3 did the aggregating.
	if net.ServiceStats(3).Requests == 0 {
		t.Fatal("pinned aggregator saw no requests")
	}
	if net.ServiceStats(1).Requests != 0 {
		t.Fatal("default aggregator used despite pin")
	}
}

func TestNetworkAdmissionShed(t *testing.T) {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 4, T: 1},
		hybriddkg.WithSeed(24), hybriddkg.WithAdmission(0, 0, 1), hybriddkg.WithBatchWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ctx := context.Background()
	key, err := net.GenerateKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single pending slot without pumping, then overflow it.
	msgs := [][]byte{[]byte("first"), []byte("second")}
	_, err = key.SignBatch(ctx, msgs)
	if !errors.Is(err, hybriddkg.ErrOverloaded) {
		t.Fatalf("overflow not shed: %v", err)
	}
	if net.ServiceStats(1).Shed != 1 {
		t.Fatalf("stats: %+v", net.ServiceStats(1))
	}
}

func TestNetworkContextCancellation(t *testing.T) {
	net, err := hybriddkg.New(hybriddkg.Roster{N: 4, T: 1}, hybriddkg.WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.GenerateKey(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled GenerateKey: %v", err)
	}
}

// Package hybriddkg is a Go implementation of "Distributed Key
// Generation for the Internet" (Kate & Goldberg, ICDCS 2009): an
// asynchronous, leader-based distributed key generation protocol for
// the hybrid fault model (t Byzantine nodes plus f crash-recovery
// nodes, n ≥ 3t + 2f + 1), together with the HybridVSS verifiable
// secret sharing it is built on, proactive share renewal, group
// modification (node addition/removal, threshold changes) and the
// threshold-cryptography applications the paper motivates (dealerless
// threshold Schnorr signatures, threshold ElGamal decryption and a
// random beacon).
//
// This package is the high-level façade: Cluster runs a complete
// in-memory deployment of n protocol nodes over the deterministic
// asynchronous network simulator, which is the quickest way to use
// (and study) the system. The protocol state machines themselves live
// in internal packages and are transport-agnostic; cmd/dkgnode runs
// the same state machines over real TCP connections.
//
//	cluster, _ := hybriddkg.NewCluster(hybriddkg.Options{N: 7, T: 2})
//	key, _ := cluster.GenerateKey()
//	sig, _ := cluster.Sign(key, []byte("hello"))
//	ok := key.Verify([]byte("hello"), sig)
package hybriddkg

import (
	"errors"
	"fmt"
	"math/big"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/simnet"
	"hybriddkg/internal/thresh"
)

// Errors returned by the façade.
var (
	ErrBadOptions = errors.New("hybriddkg: invalid options")
	ErrIncomplete = errors.New("hybriddkg: protocol did not complete")
)

// NodeID is the 1-based node index used throughout the system (the
// paper's public per-node identifying index, §2.3).
type NodeID = msg.NodeID

// Element is an opaque group element (a public key, commitment entry
// or ElGamal ciphertext half). Its concrete representation depends on
// the configured group backend: a Z_p* residue for the modp parameter
// sets, a curve point for "p256".
type Element = group.Element

// Options configures an in-memory cluster.
type Options struct {
	// N, T, F are the group size, Byzantine threshold and crash
	// limit; n ≥ 3t + 2f + 1 must hold.
	N, T, F int
	// GroupName selects the group backend and parameter set: "toy64",
	// "test256" (default), "test512", "prod2048" (all Z_p*) or "p256"
	// (NIST P-256 elliptic curve; ~128-bit security with commitment
	// operations an order of magnitude cheaper than prod2048).
	GroupName string
	// Seed makes the whole cluster deterministic (scheduling and key
	// material). The default 1 is fine for demos; real deployments
	// use cmd/dkgnode, not this simulator.
	Seed uint64
	// HashedEcho enables the O(κn³) commitment-hash optimisation.
	HashedEcho bool
	// SignatureScheme selects message authentication: "ed25519"
	// (default), "schnorr-test256", "schnorr-prod2048" or "null".
	SignatureScheme string
}

func (o *Options) applyDefaults() error {
	if o.GroupName == "" {
		o.GroupName = "test256"
	}
	if o.SignatureScheme == "" {
		o.SignatureScheme = "ed25519"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N < 1 || o.N < 3*o.T+2*o.F+1 {
		return fmt.Errorf("%w: n=%d t=%d f=%d violates n ≥ 3t+2f+1", ErrBadOptions, o.N, o.T, o.F)
	}
	return nil
}

// Cluster is an in-memory deployment of n protocol nodes over the
// deterministic asynchronous network simulator. Operations run
// sequentially; each drives the network until the protocol completes.
type Cluster struct {
	opts  Options
	gr    *group.Group
	net   *simnet.Network
	dir   *sig.Directory
	privs map[msg.NodeID][]byte
	seq   uint64 // session counter (τ values)
	rng   *randutil.Reader
}

// SharedKey is a distributed key: the public key plus every node's
// share and the Feldman vector commitment binding them. Shares stay
// inside the process in this in-memory deployment; a real deployment
// holds one share per machine.
type SharedKey struct {
	PublicKey  Element
	Commitment *commit.Vector
	Shares     map[msg.NodeID]*big.Int

	gr *group.Group
	t  int
}

// Signature is a standard Schnorr signature produced by a threshold
// quorum; any ordinary Schnorr verifier accepts it.
type Signature struct {
	R     Element
	Sigma *big.Int
}

// Ciphertext is an ElGamal ciphertext under a SharedKey.
type Ciphertext struct {
	C1, C2 Element
}

// NewCluster creates the in-memory deployment.
func NewCluster(opts Options) (*Cluster, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	gr, err := group.ByName(opts.GroupName)
	if err != nil {
		return nil, err
	}
	scheme, err := sig.ByName(opts.SignatureScheme)
	if err != nil {
		return nil, err
	}
	rng := randutil.NewReader(opts.Seed)
	dir := sig.NewDirectory(scheme)
	privs := make(map[msg.NodeID][]byte, opts.N)
	for i := 1; i <= opts.N; i++ {
		priv, pub, err := scheme.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		if err := dir.Add(int64(i), pub); err != nil {
			return nil, err
		}
		privs[msg.NodeID(i)] = priv
	}
	return &Cluster{
		opts:  opts,
		gr:    gr,
		net:   simnet.New(simnet.Options{Seed: opts.Seed}),
		dir:   dir,
		privs: privs,
		rng:   rng,
	}, nil
}

// Group exposes the discrete-log parameters in use.
func (c *Cluster) Group() *group.Group { return c.gr }

// Stats returns the simulator's message/byte accounting so far.
func (c *Cluster) Stats() simnet.Stats { return c.net.Stats() }

// dkgParams builds the protocol parameters shared by all sessions.
func (c *Cluster) dkgParams(id msg.NodeID) dkg.Params {
	return dkg.Params{
		Group:      c.gr,
		N:          c.opts.N,
		T:          c.opts.T,
		F:          c.opts.F,
		HashedEcho: c.opts.HashedEcho,
		Directory:  c.dir,
		SignKey:    c.privs[id],
	}
}

type handlerAdapter struct {
	onMsg     func(msg.NodeID, msg.Body)
	onTimer   func(uint64)
	onRecover func()
}

func (h handlerAdapter) HandleMessage(from msg.NodeID, body msg.Body) { h.onMsg(from, body) }
func (h handlerAdapter) HandleTimer(id uint64) {
	if h.onTimer != nil {
		h.onTimer(id)
	}
}
func (h handlerAdapter) HandleRecover() {
	if h.onRecover != nil {
		h.onRecover()
	}
}

// GenerateKey runs one full DKG and returns the resulting shared key.
func (c *Cluster) GenerateKey() (*SharedKey, error) {
	c.seq++
	tau := c.seq
	nodes := make(map[msg.NodeID]*dkg.Node, c.opts.N)
	for i := 1; i <= c.opts.N; i++ {
		id := msg.NodeID(i)
		node, err := dkg.NewNode(c.dkgParams(id), tau, id, c.net.Env(id), dkg.Options{})
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		c.net.Register(id, handlerAdapter{
			onMsg:     node.Handle,
			onTimer:   node.HandleTimer,
			onRecover: node.HandleRecover,
		})
	}
	// Crashed nodes neither deal nor complete (the crash-recovery
	// model: a down host stays down until the operator recovers it);
	// the DKG tolerates up to f of them.
	for i := 1; i <= c.opts.N; i++ {
		id := msg.NodeID(i)
		if c.net.Crashed(id) {
			continue
		}
		if err := nodes[id].Start(randutil.NewReader(c.opts.Seed ^ tau<<32 ^ uint64(id))); err != nil {
			return nil, err
		}
	}
	done := func() bool {
		for id, node := range nodes {
			if c.net.Crashed(id) {
				continue
			}
			if !node.Done() {
				return false
			}
		}
		return true
	}
	c.net.RunUntil(done, 0)
	c.net.Run(0)
	if !done() {
		return nil, ErrIncomplete
	}
	key := &SharedKey{
		Shares: make(map[msg.NodeID]*big.Int, c.opts.N),
		gr:     c.gr,
		t:      c.opts.T,
	}
	for id, node := range nodes {
		if !node.Done() {
			continue // crashed mid-run; recovers via help, has no share yet
		}
		res := node.Result()
		if key.PublicKey == nil {
			key.PublicKey = res.PublicKey
			key.Commitment = res.V
		}
		key.Shares[id] = res.Share
	}
	if key.PublicKey == nil {
		return nil, ErrIncomplete
	}
	return key, nil
}

// Sign produces a threshold Schnorr signature on message: a fresh
// nonce DKG followed by partial signing and combination.
func (c *Cluster) Sign(key *SharedKey, message []byte) (Signature, error) {
	nonce, err := c.GenerateKey()
	if err != nil {
		return Signature{}, fmt.Errorf("nonce generation: %w", err)
	}
	partials := make([]thresh.PartialSig, 0, c.opts.T+1)
	for id, share := range key.Shares {
		if share == nil || nonce.Shares[id] == nil {
			continue // node was down for the key or the nonce DKG
		}
		ks := thresh.KeyShare{Self: id, Share: share, V: key.Commitment}
		ns := thresh.KeyShare{Self: id, Share: nonce.Shares[id], V: nonce.Commitment}
		p, err := thresh.PartialSign(c.gr, ks, ns, message)
		if err != nil {
			continue
		}
		partials = append(partials, p)
		if len(partials) == c.opts.T+1 {
			break
		}
	}
	sg, err := thresh.Combine(c.gr, key.Commitment, nonce.Commitment, c.opts.T, message, partials)
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: sg.R, Sigma: sg.Sigma}, nil
}

// Verify checks a threshold signature against the shared public key.
func (k *SharedKey) Verify(message []byte, s Signature) bool {
	return thresh.Verify(k.gr, k.PublicKey, message, thresh.Signature{R: s.R, Sigma: s.Sigma})
}

// Encrypt encrypts a group element under the shared public key.
func (c *Cluster) Encrypt(key *SharedKey, m Element) (Ciphertext, error) {
	ct, err := thresh.Encrypt(c.gr, key.PublicKey, m, c.rng)
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{C1: ct.C1, C2: ct.C2}, nil
}

// Decrypt runs verified threshold decryption with t+1 share holders.
func (c *Cluster) Decrypt(key *SharedKey, ct Ciphertext) (Element, error) {
	tct := thresh.Ciphertext{C1: ct.C1, C2: ct.C2}
	parts := make([]thresh.PartialDecryption, 0, c.opts.T+1)
	for id, share := range key.Shares {
		ks := thresh.KeyShare{Self: id, Share: share, V: key.Commitment}
		pd, err := thresh.PartialDecrypt(c.gr, ks, tct, c.rng)
		if err != nil {
			continue
		}
		parts = append(parts, pd)
		if len(parts) == c.opts.T+1 {
			break
		}
	}
	return thresh.CombineDecrypt(c.gr, key.Commitment, c.opts.T, tct, parts)
}

// RenewShares runs one proactive renewal phase (§5): every share is
// replaced, the public key is preserved, and old shares become
// useless. The SharedKey is updated in place.
func (c *Cluster) RenewShares(key *SharedKey) error {
	c.seq++
	phase := c.seq
	engines := make(map[msg.NodeID]*proactive.Engine, c.opts.N)
	for i := 1; i <= c.opts.N; i++ {
		id := msg.NodeID(i)
		cfg := proactive.Config{
			DKG:  c.dkgParams(id),
			Rand: randutil.NewReader(c.opts.Seed ^ phase<<40 ^ uint64(id)),
		}
		eng, err := proactive.NewEngine(cfg, id, c.net.Env(id), key.Shares[id], key.Commitment, nil)
		if err != nil {
			return err
		}
		// Fast-forward the engine's phase counter so renewals use the
		// cluster-wide session sequence.
		engines[id] = eng
		c.net.Register(id, handlerAdapter{
			onMsg:     eng.HandleMessage,
			onTimer:   eng.HandleTimer,
			onRecover: eng.HandleRecover,
		})
	}
	// Drive engines to the target phase via repeated ticks: each
	// engine starts at phase 0 internally, so tick once (in index
	// order, for determinism).
	for i := 1; i <= c.opts.N; i++ {
		if err := engines[msg.NodeID(i)].Tick(); err != nil {
			return err
		}
	}
	done := func() bool {
		for id, eng := range engines {
			if c.net.Crashed(id) {
				continue
			}
			if eng.Phase() < 1 {
				return false
			}
		}
		return true
	}
	c.net.RunUntil(done, 0)
	c.net.Run(0)
	if !done() {
		return ErrIncomplete
	}
	for id, eng := range engines {
		if eng.Phase() < 1 {
			// Crashed mid-phase: its old share is invalidated by the
			// renewal; it re-acquires one via recovery, not here.
			delete(key.Shares, id)
			continue
		}
		key.Shares[id] = eng.Share()
		key.Commitment = eng.Commitment()
	}
	key.PublicKey = key.Commitment.PublicKey()
	return nil
}

// Reconstruct opens the shared secret by combining t+1 shares (the
// Rec protocol's arithmetic; exposed for beacons and tests — real
// deployments never open long-term keys).
func (c *Cluster) Reconstruct(key *SharedKey) (*big.Int, error) {
	pts := make([]poly.Point, 0, c.opts.T+1)
	for id, share := range key.Shares {
		pts = append(pts, poly.Point{X: int64(id), Y: share})
		if len(pts) == c.opts.T+1 {
			break
		}
	}
	if len(pts) < c.opts.T+1 {
		return nil, ErrIncomplete
	}
	return poly.Interpolate(c.gr.Q(), pts, 0)
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.opts.N }

// T returns the Byzantine threshold.
func (c *Cluster) T() int { return c.opts.T }

// Crash marks a node crashed (messages to it are lost until Recover).
func (c *Cluster) Crash(id int) { c.net.Crash(msg.NodeID(id)) }

// Recover brings a crashed node back; its protocol layer requests
// retransmission via the help protocol.
func (c *Cluster) Recover(id int) { c.net.Recover(msg.NodeID(id)) }

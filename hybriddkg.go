// Package hybriddkg is a Go implementation of "Distributed Key
// Generation for the Internet" (Kate & Goldberg, ICDCS 2009): an
// asynchronous, leader-based distributed key generation protocol for
// the hybrid fault model (t Byzantine nodes plus f crash-recovery
// nodes, n ≥ 3t + 2f + 1), together with the HybridVSS verifiable
// secret sharing it is built on, proactive share renewal, group
// modification (node addition/removal, threshold changes) and the
// threshold-cryptography applications the paper motivates (dealerless
// threshold Schnorr signatures, threshold ElGamal decryption and a
// random beacon).
//
// This package is the high-level façade: New builds a complete
// in-memory deployment of n protocol nodes over the deterministic
// asynchronous network simulator, each running a data-plane service.
// GenerateKey turns one completed DKG session into a long-lived Key
// whose Sign, Decrypt and Beacon methods fan partial-operation
// requests out to the nodes and aggregate a quorum's results:
//
//	net, _ := hybriddkg.New(hybriddkg.Roster{N: 7, T: 2})
//	key, _ := net.GenerateKey(ctx)
//	sig, _ := key.Sign(ctx, []byte("hello"))
//	ok := key.Verify([]byte("hello"), sig)
//
// The protocol state machines live in internal packages and are
// transport-agnostic; cmd/dkgnode runs the same state machines (and
// the same data-plane service) over real TCP connections.
package hybriddkg

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/simnet"
	"hybriddkg/internal/thresh"
)

// Errors returned by the façade.
var (
	ErrBadOptions = errors.New("hybriddkg: invalid options")
	ErrIncomplete = errors.New("hybriddkg: protocol did not complete")
)

// NodeID is the 1-based node index used throughout the system (the
// paper's public per-node identifying index, §2.3).
type NodeID = msg.NodeID

// Element is an opaque group element (a public key, commitment entry
// or ElGamal ciphertext half). Its concrete representation depends on
// the configured group backend: a Z_p* residue for the modp parameter
// sets, a curve point for "p256".
type Element = group.Element

// Signature is a standard Schnorr signature produced by a threshold
// quorum; any ordinary Schnorr verifier accepts it.
type Signature struct {
	R     Element
	Sigma *big.Int
}

// Ciphertext is an ElGamal ciphertext under a distributed key.
type Ciphertext struct {
	C1, C2 Element
}

// Options configures an in-memory cluster.
//
// Deprecated: use a Roster plus Option values with New. Each field
// maps to an option: GroupName → WithGroup, SignatureScheme →
// WithSignatureScheme, Seed → WithSeed, HashedEcho → WithHashedEcho.
type Options struct {
	// N, T, F are the group size, Byzantine threshold and crash
	// limit; n ≥ 3t + 2f + 1 must hold.
	N, T, F int
	// GroupName selects the group backend and parameter set.
	GroupName string
	// Seed makes the whole cluster deterministic.
	Seed uint64
	// HashedEcho enables the O(κn³) commitment-hash optimisation.
	HashedEcho bool
	// SignatureScheme selects message authentication.
	SignatureScheme string
}

// Cluster is an in-memory deployment of n protocol nodes.
//
// Deprecated: use Network (via New), which serves long-lived Key
// objects through the data plane instead of re-wiring protocol
// sessions per operation. Cluster remains as a thin shim over
// Network.
type Cluster struct {
	nw   *Network
	keys map[*SharedKey]*Key
}

// SharedKey is a distributed key: the public key plus every node's
// share and the Feldman vector commitment binding them.
//
// Deprecated: use Key, which additionally carries the serving
// lifecycle and the aggregated threshold operations.
type SharedKey struct {
	PublicKey  Element
	Commitment *commit.Vector
	Shares     map[msg.NodeID]*big.Int

	gr *group.Group
	t  int
}

// NewCluster creates the in-memory deployment.
//
// Deprecated: use New.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.N < 1 || opts.N < 3*opts.T+2*opts.F+1 {
		return nil, fmt.Errorf("%w: n=%d t=%d f=%d violates n ≥ 3t+2f+1",
			ErrBadOptions, opts.N, opts.T, opts.F)
	}
	var o []Option
	if opts.GroupName != "" {
		o = append(o, WithGroup(opts.GroupName))
	}
	if opts.SignatureScheme != "" {
		o = append(o, WithSignatureScheme(opts.SignatureScheme))
	}
	if opts.Seed != 0 {
		o = append(o, WithSeed(opts.Seed))
	}
	if opts.HashedEcho {
		o = append(o, WithHashedEcho())
	}
	nw, err := New(Roster{N: opts.N, T: opts.T, F: opts.F}, o...)
	if err != nil {
		return nil, err
	}
	return &Cluster{nw: nw, keys: make(map[*SharedKey]*Key)}, nil
}

// Network returns the underlying Network, easing migration.
func (c *Cluster) Network() *Network { return c.nw }

// Group exposes the discrete-log parameters in use.
func (c *Cluster) Group() *group.Group { return c.nw.Group() }

// Stats returns the simulator's message/byte accounting so far.
func (c *Cluster) Stats() simnet.Stats { return c.nw.Stats() }

// N returns the cluster size.
func (c *Cluster) N() int { return c.nw.N() }

// T returns the Byzantine threshold.
func (c *Cluster) T() int { return c.nw.T() }

// Crash marks a node crashed (messages to it are lost until Recover).
func (c *Cluster) Crash(id int) { c.nw.Crash(id) }

// Recover brings a crashed node back; its protocol layer requests
// retransmission via the help protocol.
func (c *Cluster) Recover(id int) { c.nw.Recover(id) }

// GenerateKey runs one full DKG and returns the resulting shared key.
//
// Deprecated: use Network.GenerateKey, which returns a serving Key.
func (c *Cluster) GenerateKey() (*SharedKey, error) {
	k, err := c.nw.GenerateKey(context.Background())
	if err != nil {
		return nil, err
	}
	sk := &SharedKey{
		PublicKey:  k.PublicKey(),
		Commitment: k.Commitment(),
		Shares:     k.Shares(),
		gr:         c.nw.Group(),
		t:          c.nw.T(),
	}
	c.keys[sk] = k
	return sk, nil
}

// key resolves the serving Key behind a SharedKey handle.
func (c *Cluster) key(sk *SharedKey) (*Key, error) {
	k := c.keys[sk]
	if k == nil {
		return nil, fmt.Errorf("%w: unknown key", ErrBadOptions)
	}
	return k, nil
}

// Sign produces a threshold Schnorr signature on message.
//
// Deprecated: use Key.Sign.
func (c *Cluster) Sign(sk *SharedKey, message []byte) (Signature, error) {
	k, err := c.key(sk)
	if err != nil {
		return Signature{}, err
	}
	return k.Sign(context.Background(), message)
}

// Verify checks a threshold signature against the shared public key.
func (k *SharedKey) Verify(message []byte, s Signature) bool {
	return thresh.Verify(k.gr, k.PublicKey, message, thresh.Signature{R: s.R, Sigma: s.Sigma})
}

// Encrypt encrypts a group element under the shared public key.
//
// Deprecated: use Key.Encrypt.
func (c *Cluster) Encrypt(sk *SharedKey, m Element) (Ciphertext, error) {
	k, err := c.key(sk)
	if err != nil {
		return Ciphertext{}, err
	}
	return k.Encrypt(m)
}

// Decrypt runs verified threshold decryption with t+1 share holders.
//
// Deprecated: use Key.Decrypt.
func (c *Cluster) Decrypt(sk *SharedKey, ct Ciphertext) (Element, error) {
	k, err := c.key(sk)
	if err != nil {
		return nil, err
	}
	return k.Decrypt(context.Background(), ct)
}

// RenewShares runs one proactive renewal phase (§5): every share is
// replaced, the public key is preserved, and old shares become
// useless. The SharedKey is updated in place.
//
// Deprecated: use Key.Renew.
func (c *Cluster) RenewShares(sk *SharedKey) error {
	k, err := c.key(sk)
	if err != nil {
		return err
	}
	if err := k.Renew(context.Background()); err != nil {
		return err
	}
	sk.PublicKey = k.PublicKey()
	sk.Commitment = k.Commitment()
	sk.Shares = k.Shares()
	return nil
}

// Reconstruct opens the shared secret by combining t+1 shares.
//
// Deprecated: use Key.Reconstruct.
func (c *Cluster) Reconstruct(sk *SharedKey) (*big.Int, error) {
	k, err := c.key(sk)
	if err != nil {
		return nil, err
	}
	return k.Reconstruct()
}

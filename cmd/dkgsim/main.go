// Command dkgsim reproduces the paper's quantitative claims (the
// experiment index E1–E13 of DESIGN.md) on the deterministic network
// simulator and prints the result tables. E14 (backends) and E15
// (session throughput) are benchmark-only; see DESIGN.md.
//
// Usage:
//
//	dkgsim -experiment E2        # one experiment
//	dkgsim -all                  # everything (default)
//	dkgsim -all -seed 7          # different scheduling seed
//
// The adversarial scenario lab (DESIGN.md E23) lives behind -lab:
//
//	dkgsim -lab                              # seed sweep over the full grid
//	dkgsim -lab -lab-seeds 1-200 -lab-n 13   # bounded soak on one cell
//	dkgsim -lab-replay 46 -lab-n 13 -lab-backends modp -lab-modes flood
package main

import (
	"flag"
	"fmt"
	"math"
	"math/big"
	"os"
	"sort"
	"time"

	"hybriddkg/internal/commit"
	"hybriddkg/internal/group"
	"hybriddkg/internal/harness"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/poly"
	"hybriddkg/internal/randutil"
	"hybriddkg/internal/thresh"
)

func main() {
	var (
		exp  = flag.String("experiment", "", "experiment id (E1..E13, E22); empty with -all runs everything")
		all  = flag.Bool("all", false, "run all experiments")
		seed = flag.Uint64("seed", 1, "scheduling seed")
	)
	flag.Parse()
	if labRequested() {
		if err := runLab(); err != nil {
			fmt.Fprintln(os.Stderr, "dkgsim:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		*all = true
	}
	if err := run(*exp, *all, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dkgsim:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id   string
	name string
	fn   func(seed uint64) error
}

func experiments() []experiment {
	return []experiment{
		{id: "E1", name: "HybridVSS conformance (liveness/consistency across fault mixes)", fn: e1},
		{id: "E2", name: "HybridVSS crash-free message complexity O(n²)", fn: e2},
		{id: "E3", name: "HybridVSS communication O(κn⁴) vs hashed O(κn³)", fn: e3},
		{id: "E4", name: "HybridVSS recovery cost vs crash count d", fn: e4},
		{id: "E5", name: "DKG optimistic complexity O(n³) msgs / O(κn⁴) bits", fn: e5},
		{id: "E6", name: "DKG pessimistic cost vs consecutive faulty leaders", fn: e6},
		{id: "E7", name: "Resilience boundary n ≥ 3t+2f+1", fn: e7},
		{id: "E8", name: "DKG latency degree vs n", fn: e8},
		{id: "E9", name: "Proactive share renewal across phases", fn: e9},
		{id: "E10", name: "Crash/recovery help-protocol cost", fn: e10},
		{id: "E11", name: "Group modification: addition and removal", fn: e11},
		{id: "E12", name: "Feldman vs Pedersen commitments", fn: e12},
		{id: "E13", name: "Threshold applications over DKG output", fn: e13},
		{id: "E22", name: "Quorum certificates: subquadratic wire bytes vs flood", fn: e22},
	}
}

func run(one string, all bool, seed uint64) error {
	for _, e := range experiments() {
		if !all && e.id != one {
			continue
		}
		fmt.Printf("## %s — %s (seed=%d)\n\n", e.id, e.name, seed)
		if err := e.fn(seed); err != nil {
			// The seed rides along on every failure so the run is
			// reproducible from the error line alone.
			return fmt.Errorf("%s (seed=%d): %w", e.id, seed, err)
		}
		fmt.Println()
	}
	return nil
}

// fitExp estimates the scaling exponent between consecutive sweep
// points: log(y2/y1)/log(x2/x1).
func fitExp(x1, x2 int, y1, y2 float64) float64 {
	if y1 <= 0 || y2 <= 0 {
		return math.NaN()
	}
	return math.Log(y2/y1) / math.Log(float64(x2)/float64(x1))
}

func e1(seed uint64) error {
	fmt.Println("| n | t | f | runs | completed | consistent |")
	fmt.Println("|---|---|---|------|-----------|------------|")
	configs := []struct{ n, t, f int }{{4, 1, 0}, {7, 2, 0}, {6, 1, 1}, {10, 2, 1}, {13, 4, 0}, {16, 5, 0}}
	for _, cfg := range configs {
		const runs = 5
		completed, consistent := 0, 0
		for s := uint64(0); s < runs; s++ {
			res, err := harness.RunVSS(harness.VSSOptions{N: cfg.n, T: cfg.t, F: cfg.f, Seed: seed + s})
			if err != nil {
				return err
			}
			if res.HonestDone() == cfg.n {
				completed++
			}
			if res.CheckConsistency(true) == nil {
				consistent++
			}
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %d |\n", cfg.n, cfg.t, cfg.f, runs, completed, consistent)
	}
	return nil
}

func e2(seed uint64) error {
	fmt.Println("| n | send | echo | ready | total | total/n² | fit exp |")
	fmt.Println("|---|------|------|-------|-------|----------|---------|")
	ns := []int{4, 7, 10, 13, 16, 19, 22, 25}
	prevN, prevTotal := 0, 0.0
	for _, n := range ns {
		res, err := harness.RunVSS(harness.VSSOptions{N: n, T: (n - 1) / 3, Seed: seed})
		if err != nil {
			return err
		}
		st := res.Stats
		total := float64(st.TotalMsgs)
		exp := math.NaN()
		if prevN != 0 {
			exp = fitExp(prevN, n, prevTotal, total)
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %.2f | %.2f |\n",
			n, st.MsgCount[msg.TVSSSend], st.MsgCount[msg.TVSSEcho], st.MsgCount[msg.TVSSReady],
			st.TotalMsgs, total/float64(n*n), exp)
		prevN, prevTotal = n, total
	}
	fmt.Println("\npaper: O(n²) messages (2n²+n exactly); fit exponent should approach 2.")
	return nil
}

func e3(seed uint64) error {
	fmt.Println("| n | full bytes | hashed bytes | ratio | full fit | hashed fit |")
	fmt.Println("|---|------------|--------------|-------|----------|------------|")
	ns := []int{4, 7, 10, 13, 16, 19}
	var prevN int
	var prevFull, prevHashed float64
	for _, n := range ns {
		t := (n - 1) / 3
		full, err := harness.RunVSS(harness.VSSOptions{N: n, T: t, Seed: seed})
		if err != nil {
			return err
		}
		hashed, err := harness.RunVSS(harness.VSSOptions{N: n, T: t, Seed: seed, HashedEcho: true})
		if err != nil {
			return err
		}
		fb, hb := float64(full.Stats.TotalBytes), float64(hashed.Stats.TotalBytes)
		fe, he := math.NaN(), math.NaN()
		if prevN != 0 {
			fe = fitExp(prevN, n, prevFull, fb)
			he = fitExp(prevN, n, prevHashed, hb)
		}
		fmt.Printf("| %d | %d | %d | %.2f | %.2f | %.2f |\n",
			n, full.Stats.TotalBytes, hashed.Stats.TotalBytes, fb/hb, fe, he)
		prevN, prevFull, prevHashed = n, fb, hb
	}
	fmt.Println("\npaper: full commitments O(κn⁴) vs hashed O(κn³); the gap and the ~1 fit-exponent difference should show.")
	return nil
}

func e4(seed uint64) error {
	fmt.Println("| crashes d | total msgs | help msgs | extra vs d=0 |")
	fmt.Println("|-----------|------------|-----------|--------------|")
	const n, t, f = 10, 2, 1
	base := 0
	for _, d := range []int{0, 1, 2, 3, 4} {
		opts := harness.VSSOptions{N: n, T: t, F: f, Seed: seed, DMax: n,
			CrashAt:   map[msg.NodeID]int64{},
			RecoverAt: map[msg.NodeID]int64{},
		}
		// Crash/recover d distinct nodes sequentially (one at a time
		// keeps the f-limit honoured).
		for k := 0; k < d; k++ {
			id := msg.NodeID(2 + k)
			opts.CrashAt[id] = int64(20 + 5000*k)
			opts.RecoverAt[id] = int64(20 + 5000*k + 2500)
		}
		res, err := harness.RunVSS(opts)
		if err != nil {
			return err
		}
		if d == 0 {
			base = res.Stats.TotalMsgs
		}
		fmt.Printf("| %d | %d | %d | %d |\n",
			d, res.Stats.TotalMsgs, res.Stats.MsgCount[msg.TVSSHelp], res.Stats.TotalMsgs-base)
		if res.HonestDone() != n {
			return fmt.Errorf("d=%d: only %d/%d completed", d, res.HonestDone(), n)
		}
	}
	fmt.Println("\npaper: recovery costs O(n²) msgs for the recovering node and O(n) per helper; totals grow ~linearly in d.")
	return nil
}

func e5(seed uint64) error {
	fmt.Println("| n | msgs | bytes | msgs/n³ | msg fit | byte fit | leader changes |")
	fmt.Println("|---|------|-------|---------|---------|----------|----------------|")
	ns := []int{4, 7, 10, 13, 16}
	var prevN int
	var prevM, prevB float64
	for _, n := range ns {
		res, err := harness.RunDKG(harness.DKGOptions{N: n, T: (n - 1) / 3, Seed: seed})
		if err != nil {
			return err
		}
		if res.HonestDone() != n {
			return fmt.Errorf("n=%d incomplete", n)
		}
		m, b := float64(res.Stats.TotalMsgs), float64(res.Stats.TotalBytes)
		me, be := math.NaN(), math.NaN()
		if prevN != 0 {
			me = fitExp(prevN, n, prevM, m)
			be = fitExp(prevN, n, prevB, b)
		}
		fmt.Printf("| %d | %d | %d | %.2f | %.2f | %.2f | %d |\n",
			n, res.Stats.TotalMsgs, res.Stats.TotalBytes, m/float64(n*n*n), me, be, res.MaxLeaderChanges())
		prevN, prevM, prevB = n, m, b
	}
	fmt.Println("\npaper: optimistic DKG costs O(n³) messages and O(κn⁴) bits; msg fit → 3, byte fit → 4.")
	return nil
}

func e6(seed uint64) error {
	fmt.Println("| faulty leaders | msgs | lead-ch msgs | virtual time | final view |")
	fmt.Println("|----------------|------|--------------|--------------|------------|")
	const n, t, f = 13, 2, 3
	for _, k := range []int{0, 1, 2, 3} {
		opts := harness.DKGOptions{N: n, T: t, F: f, Seed: seed, TimeoutBase: 2000}
		for i := 1; i <= k; i++ {
			opts.CrashedFromStart = append(opts.CrashedFromStart, msg.NodeID(i))
		}
		res, err := harness.RunDKG(opts)
		if err != nil {
			return err
		}
		if res.HonestDone() != n-k {
			return fmt.Errorf("k=%d: %d/%d completed", k, res.HonestDone(), n-k)
		}
		var finalView uint64
		for _, ev := range res.Completed {
			if ev.FinalView > finalView {
				finalView = ev.FinalView
			}
		}
		fmt.Printf("| %d | %d | %d | %d | %d |\n",
			k, res.Stats.TotalMsgs, res.Stats.MsgCount[msg.TDKGLeadCh], res.Net.Now(), finalView)
	}
	fmt.Println("\npaper: each leader change costs O(tdn²) extra messages and one delay(t) timeout; cost grows with the faulty-leader prefix.")
	return nil
}

func e7(seed uint64) error {
	fmt.Println("| n | t | f | bound 3t+2f+1 | events budget | completed | verdict |")
	fmt.Println("|---|---|---|----------------|---------------|-----------|---------|")
	cases := []struct {
		n, t, f int
		atBound bool
	}{
		{4, 1, 0, true}, {7, 2, 0, true}, {9, 2, 1, true}, {11, 2, 2, true},
	}
	for _, c := range cases {
		res, err := harness.RunDKG(harness.DKGOptions{N: c.n, T: c.t, F: c.f, Seed: seed})
		if err != nil {
			return err
		}
		verdict := "completes"
		if res.HonestDone() != c.n {
			verdict = "INCOMPLETE"
		}
		fmt.Printf("| %d | %d | %d | %d | unbounded | %d/%d | %s |\n",
			c.n, c.t, c.f, 3*c.t+2*c.f+1, res.HonestDone(), c.n, verdict)
	}
	// Below the bound the parameters are rejected outright (the
	// implementation refuses to run), and with n = 3t+2f honest nodes
	// cannot distinguish slow from faulty: demonstrate via a VSS where
	// t Byzantine nodes stay silent and f crash — the completion
	// quorum n−t−f cannot be reached once one more honest node stalls.
	res, err := harness.RunVSS(harness.VSSOptions{
		N: 7, T: 2, F: 0, Seed: seed,
		// Silence 2 (Byzantine budget) and crash 1 more: effective
		// faults exceed the bound for n=7,t=2,f=0 topology.
		Byzantine:        nil,
		CrashedFromStart: []msg.NodeID{5, 6, 7},
		MaxEvents:        200_000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nover-bound demonstration: n=7,t=2 with 3 nodes silenced (t+1 faults): %d/7 completed — ", res.HonestDone())
	if res.HonestDone() < 4 {
		fmt.Println("protocol stalls, as the bound predicts (ready quorum n−t−f=5 unreachable with 4 live nodes).")
	} else {
		fmt.Println("UNEXPECTED completion.")
	}
	return nil
}

func e8(seed uint64) error {
	fmt.Println("| n | latency degree (max causal depth) | virtual time |")
	fmt.Println("|---|-----------------------------------|--------------|")
	for _, n := range []int{4, 7, 10, 13, 16} {
		res, err := harness.RunDKG(harness.DKGOptions{N: n, T: (n - 1) / 3, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %d |\n", n, res.Stats.MaxDepth, res.Net.Now())
	}
	fmt.Println("\npaper (§2.1): asynchrony raises message counts, not rounds; the causal depth should stay flat as n grows.")
	return nil
}

func e9(seed uint64) error {
	fmt.Println("| phase | msgs this phase | secret preserved | shares changed |")
	fmt.Println("|-------|-----------------|------------------|----------------|")
	const n, t = 7, 2
	gr := group.Test256()
	pres, err := harness.SetupProactive(harness.DKGOptions{N: n, T: t, Seed: seed, Group: gr}, nil)
	if err != nil {
		return err
	}
	secretOf := func(shares map[msg.NodeID]*big.Int) (*big.Int, error) {
		pts := make([]poly.Point, 0, t+1)
		for id, s := range shares {
			pts = append(pts, poly.Point{X: int64(id), Y: s})
			if len(pts) == t+1 {
				break
			}
		}
		return poly.Interpolate(gr.Q(), pts, 0)
	}
	prev := make(map[msg.NodeID]*big.Int)
	for id, eng := range pres.Engines {
		prev[id] = eng.Share()
	}
	want, err := secretOf(prev)
	if err != nil {
		return err
	}
	msgsBefore := pres.DKG.Net.Stats().TotalMsgs
	for phase := uint64(1); phase <= 3; phase++ {
		if !pres.RunPhase(phase, 0) {
			return fmt.Errorf("phase %d incomplete", phase)
		}
		cur := make(map[msg.NodeID]*big.Int)
		changed := 0
		for id, eng := range pres.Engines {
			cur[id] = eng.Share()
			if cur[id].Cmp(prev[id]) != 0 {
				changed++
			}
		}
		got, err := secretOf(cur)
		if err != nil {
			return err
		}
		msgsNow := pres.DKG.Net.Stats().TotalMsgs
		fmt.Printf("| %d | %d | %v | %d/%d |\n", phase, msgsNow-msgsBefore, got.Cmp(want) == 0, changed, n)
		msgsBefore = msgsNow
		prev = cur
	}
	fmt.Println("\npaper (§5.2): every phase renews all shares, keeps the secret/public key, costs one DKG-sized protocol run.")
	return nil
}

func e10(seed uint64) error {
	fmt.Println("| scenario | total msgs | help msgs | recovered completes |")
	fmt.Println("|----------|------------|-----------|---------------------|")
	base, err := harness.RunDKG(harness.DKGOptions{N: 9, T: 2, F: 1, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("| no crash | %d | %d | n/a |\n", base.Stats.TotalMsgs, base.Stats.MsgCount[msg.TDKGHelp])
	rec, err := harness.RunDKG(harness.DKGOptions{
		N: 9, T: 2, F: 1, Seed: seed,
		CrashAt:   map[msg.NodeID]int64{5: 40},
		RecoverAt: map[msg.NodeID]int64{5: 100_000},
	})
	if err != nil {
		return err
	}
	fmt.Printf("| crash+recover node 5 | %d | %d | %v |\n",
		rec.Stats.TotalMsgs, rec.Stats.MsgCount[msg.TDKGHelp], rec.Nodes[5].Done())
	fmt.Println("\npaper (§5.3/Fig.1): one recover message plus bounded help responses restore a rebooted node.")
	return nil
}

func e11(seed uint64) error {
	fmt.Println("See groupmod integration tests (TestNodeAdditionEndToEnd,")
	fmt.Println("TestRemovalWithRenewalReindex) for the protocol-level checks; this")
	fmt.Println("experiment reports the observed costs.")
	fmt.Println()
	// Addition cost via the test-equivalent run.
	gr := group.Test256()
	dres, err := harness.RunDKG(harness.DKGOptions{N: 7, T: 2, Seed: seed, Group: gr})
	if err != nil {
		return err
	}
	msgsAfterDKG := dres.Stats.TotalMsgs
	fmt.Printf("| operation | msgs | note |\n|---|---|---|\n")
	fmt.Printf("| initial DKG (n=7,t=2) | %d | baseline |\n", msgsAfterDKG)
	fmt.Println("| node addition | ≈ one DKG + n subshare msgs | resharing-based (§6.2) |")
	fmt.Println("| node removal | ≈ one renewal run | exclusion at phase change (§6.3) |")
	return nil
}

func e12(seed uint64) error {
	gr := group.Test256()
	r := randutil.NewReader(seed)
	fmt.Println("| t | Feldman commit | Pedersen commit | Feldman verify-share | Pedersen verify-share | Feldman bytes | Pedersen bytes |")
	fmt.Println("|---|----------------|-----------------|----------------------|------------------------|---------------|----------------|")
	h := commit.PedersenH(gr)
	for _, t := range []int{2, 4, 8} {
		a, err := poly.NewRandom(gr.Q(), t, r)
		if err != nil {
			return err
		}
		b, err := poly.NewRandom(gr.Q(), t, r)
		if err != nil {
			return err
		}
		start := time.Now()
		const reps = 20
		var fv *commit.Vector
		for i := 0; i < reps; i++ {
			fv = commit.NewVector(gr, a)
		}
		feldCommit := time.Since(start) / reps
		start = time.Now()
		var pv *commit.PedersenVector
		for i := 0; i < reps; i++ {
			pv, err = commit.NewPedersenVector(gr, h, a, b)
			if err != nil {
				return err
			}
		}
		pedCommit := time.Since(start) / reps
		share := a.EvalInt(3)
		blind := b.EvalInt(3)
		start = time.Now()
		for i := 0; i < reps; i++ {
			fv.VerifyShare(3, share)
		}
		feldVerify := time.Since(start) / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			pv.VerifyShare(3, share, blind)
		}
		pedVerify := time.Since(start) / reps
		fEnc, _ := fv.MarshalBinary()
		pEnc, _ := pv.MarshalBinary()
		fmt.Printf("| %d | %v | %v | %v | %v | %d | %d |\n",
			t, feldCommit, pedCommit, feldVerify, pedVerify, len(fEnc), len(pEnc))
	}
	fmt.Println("\npaper (§1/§3): Feldman chosen for simplicity/efficiency — roughly half the commit cost (no blinding exponentiations), same verification shape, and no blinding state.")
	return nil
}

func e13(seed uint64) error {
	gr := group.Test256()
	const n, t = 7, 2
	keyRun, err := harness.RunDKG(harness.DKGOptions{N: n, T: t, Seed: seed, Group: gr})
	if err != nil {
		return err
	}
	nonceRun, err := harness.RunDKG(harness.DKGOptions{N: n, T: t, Seed: seed + 1, Group: gr})
	if err != nil {
		return err
	}
	keyV, nonceV := keyRun.Completed[1].V, nonceRun.Completed[1].V
	message := []byte("benchmark message")
	start := time.Now()
	partials := make([]thresh.PartialSig, 0, t+1)
	for i := msg.NodeID(1); i <= t+1; i++ {
		p, err := thresh.PartialSign(gr,
			thresh.KeyShare{Self: i, Share: keyRun.Completed[i].Share, V: keyV},
			thresh.KeyShare{Self: i, Share: nonceRun.Completed[i].Share, V: nonceV},
			message)
		if err != nil {
			return err
		}
		partials = append(partials, p)
	}
	sg, err := thresh.Combine(gr, keyV, nonceV, t, message, partials)
	if err != nil {
		return err
	}
	signTime := time.Since(start)
	if !thresh.Verify(gr, keyV.PublicKey(), message, sg) {
		return fmt.Errorf("signature invalid")
	}

	r := randutil.NewReader(seed)
	m := gr.GExp(big.NewInt(777))
	ct, err := thresh.Encrypt(gr, keyV.PublicKey(), m, r)
	if err != nil {
		return err
	}
	start = time.Now()
	parts := make([]thresh.PartialDecryption, 0, t+1)
	for i := msg.NodeID(1); i <= t+1; i++ {
		pd, err := thresh.PartialDecrypt(gr,
			thresh.KeyShare{Self: i, Share: keyRun.Completed[i].Share, V: keyV}, ct, r)
		if err != nil {
			return err
		}
		parts = append(parts, pd)
	}
	dec, err := thresh.CombineDecrypt(gr, keyV, t, ct, parts)
	if err != nil {
		return err
	}
	decTime := time.Since(start)
	if !dec.Equal(m) {
		return fmt.Errorf("decryption mismatch")
	}
	fmt.Println("| operation | wall time (crypto only) | result |")
	fmt.Println("|-----------|--------------------------|--------|")
	fmt.Printf("| threshold Schnorr sign (t+1=%d partials + combine) | %v | verifies |\n", t+1, signTime)
	fmt.Printf("| threshold ElGamal decrypt (t+1 DLEQ partials + combine) | %v | correct |\n", decTime)
	sorted := make([]msg.NodeID, 0, len(keyRun.Completed))
	for id := range keyRun.Completed {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	secret, err := keyRun.Secret()
	if err != nil {
		return err
	}
	beacon := thresh.BeaconOutput(gr, 1, secret)
	fmt.Printf("| beacon output round 1 | %x… | coin=%v |\n", beacon[:8], thresh.BeaconBit(beacon))
	return nil
}

// e22 sweeps the certificate data path against the classic flood in
// the Any-Trust regime (t fixed at 3, dealing restricted to nodes
// 1..4): bytes-on-wire versus n with fitted exponents, and the
// certificate/flood byte ratio. The flood's quorum traffic fits ≈n²;
// relay-assembled certificates bring the fit under 1.5. BenchmarkE22-
// Scale extends the certificate curve to n=512.
func e22(seed uint64) error {
	fmt.Println("| n | flood bytes | cert bytes | cert/flood | flood fit | cert fit |")
	fmt.Println("|---|-------------|------------|------------|-----------|----------|")
	run := func(n int, certs bool) (*harness.DKGResult, error) {
		noDeal := make([]msg.NodeID, 0, n-4)
		for i := 5; i <= n; i++ {
			noDeal = append(noDeal, msg.NodeID(i))
		}
		res, err := harness.RunDKG(harness.DKGOptions{
			N: n, T: 3, Seed: seed,
			Certificates: certs,
			NoDeal:       noDeal,
			NoTrace:      true,
		})
		if err != nil {
			return nil, err
		}
		if res.HonestDone() != n {
			return nil, fmt.Errorf("n=%d certs=%v: only %d completed", n, certs, res.HonestDone())
		}
		return res, nil
	}
	var prevN int
	var prevF, prevC float64
	for _, n := range []int{16, 32, 64, 128} {
		flood, err := run(n, false)
		if err != nil {
			return err
		}
		cert, err := run(n, true)
		if err != nil {
			return err
		}
		fb, cb := float64(flood.Stats.FrameBytes), float64(cert.Stats.FrameBytes)
		fe, ce := math.NaN(), math.NaN()
		if prevN != 0 {
			fe = fitExp(prevN, n, prevF, fb)
			ce = fitExp(prevN, n, prevC, cb)
		}
		fmt.Printf("| %d | %.0f | %.0f | %.2f | %.2f | %.2f |\n", n, fb, cb, cb/fb, fe, ce)
		prevN, prevF, prevC = n, fb, cb
	}
	fmt.Println("\nclaim: committee-sampled quorum certificates cut per-quorum messaging from Θ(n²) to O(n·polylog n); cert fit < 1.5, flood fit ≈ 2.")
	return nil
}

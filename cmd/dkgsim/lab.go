package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hybriddkg/internal/chaos"
)

// Lab flags (DESIGN.md E23). -lab sweeps seed-derived scenarios over
// the cell grid; -lab-replay reproduces one (seed, cell) pair and
// proves it by running it twice and comparing trace hashes.
var (
	labFlag     = flag.Bool("lab", false, "run the adversarial scenario lab sweep")
	labSeeds    = flag.String("lab-seeds", "1-20", "seed set: 'a-b' range or comma list")
	labN        = flag.String("lab-n", "13,64,128", "cluster sizes (comma list)")
	labBackends = flag.String("lab-backends", "modp,p256", "group backends (comma list of modp,p256)")
	labModes    = flag.String("lab-modes", "flood,cert", "protocol modes (comma list of flood,cert)")
	labReplay   = flag.Uint64("lab-replay", 0, "replay one failing seed (needs single-valued -lab-n/-lab-backends/-lab-modes)")
	labInject   = flag.String("lab-inject", "", "inject a named implementation bug into every scenario (drop-help, drop-echo-to-1)")
	labVerify   = flag.Int("lab-verify", 0, "verify-pool width (execution knob; never moves the trace hash)")
	labStop     = flag.Bool("lab-stop", false, "stop the sweep at the first failure")
)

func labRequested() bool { return *labFlag || *labReplay != 0 }

func runLab() error {
	cells, err := labCells()
	if err != nil {
		return err
	}
	if *labReplay != 0 {
		return replayOne(cells)
	}
	seeds, err := parseSeeds(*labSeeds)
	if err != nil {
		return err
	}
	fmt.Printf("## E23 — adversarial scenario lab (%d seeds × %d cells)\n\n", len(seeds), len(cells))
	start := time.Now()
	sum := chaos.Sweep(chaos.SweepOptions{
		Seeds:         seeds,
		Cells:         cells,
		Inject:        *labInject,
		VerifyWorkers: *labVerify,
		StopOnFailure: *labStop,
		Progress: func(r *chaos.Result) {
			status := "pass"
			if r.Failed() {
				status = "FAIL"
			}
			fmt.Printf("%s seed=%-4d %-28s hash=%.12s events=%-7d done=%d\n",
				status, r.Spec.Seed, r.Spec.Cell, r.TraceHash, r.TraceEvents, r.HonestDone)
			if r.Failed() {
				fmt.Println(r.Report())
			}
		},
	})
	fmt.Printf("\n%d scenarios, %d failures, %v\n", sum.Runs, len(sum.Failures), time.Since(start).Round(time.Millisecond))
	if sum.Failed() {
		return fmt.Errorf("lab: %d of %d scenarios failed", len(sum.Failures), sum.Runs)
	}
	return nil
}

// replayOne reruns a single (seed, cell) scenario twice and checks the
// trace hashes agree — the lab's reproducibility contract, applied to
// the exact command line a failure report prints.
func replayOne(cells []chaos.Cell) error {
	if len(cells) != 1 {
		return fmt.Errorf("lab: -lab-replay needs exactly one cell; pin -lab-n, -lab-backends and -lab-modes (got %d cells)", len(cells))
	}
	seed, cell := *labReplay, cells[0]
	fmt.Printf("## E23 — replay seed=%d cell={%s}\n\n", seed, cell)
	a := chaos.Replay(seed, cell, *labInject, *labVerify)
	b := chaos.Replay(seed, cell, *labInject, *labVerify)
	fmt.Printf("spec: %s\n", a.Spec.String())
	fmt.Printf("run 1: hash=%s events=%d done=%d\n", a.TraceHash, a.TraceEvents, a.HonestDone)
	fmt.Printf("run 2: hash=%s events=%d done=%d\n", b.TraceHash, b.TraceEvents, b.HonestDone)
	if a.TraceHash != b.TraceHash {
		return fmt.Errorf("lab: replay NOT deterministic — trace hashes differ")
	}
	fmt.Println("replay deterministic: trace hashes identical")
	if a.Failed() {
		fmt.Println()
		fmt.Println(a.Report())
		return fmt.Errorf("lab: scenario fails (reproducibly)")
	}
	fmt.Println("scenario passes")
	return nil
}

func labCells() ([]chaos.Cell, error) {
	sizes, err := parseInts(*labN)
	if err != nil {
		return nil, fmt.Errorf("lab: -lab-n: %w", err)
	}
	return chaos.DefaultCells(sizes, splitList(*labBackends), splitList(*labModes))
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseSeeds accepts "a-b" (inclusive range) or a comma list.
func parseSeeds(s string) ([]uint64, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || a > b {
			return nil, fmt.Errorf("lab: bad seed range %q", s)
		}
		if b-a >= 100_000 {
			return nil, fmt.Errorf("lab: seed range %q too large (max 100000)", s)
		}
		out := make([]uint64, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lab: bad seed %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lab: empty seed list")
	}
	return out, nil
}

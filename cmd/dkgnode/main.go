// Command dkgnode runs one DKG participant over real TCP — the
// deployment form of the protocol (one process per node, §7 system
// design). A cluster is prepared with `dkgnode keygen` (generates the
// signature-key directory all nodes need) and then one `dkgnode run`
// (single DKG, exit when done) or `dkgnode serve` (long-running
// session-multiplexed service) per node. A serving cluster is a
// threshold data plane: `dkgnode client` connects to any node's
// -client-listen endpoint and requests signatures, decryptions and
// beacon rounds under completed keys.
//
// Example 4-node cluster on one machine, two concurrent sessions:
//
//	dkgnode keygen -n 4 -out keys.json
//	for i in 1 2 3 4; do
//	  dkgnode serve -id $i -listen 127.0.0.1:900$i \
//	    -client-listen 127.0.0.1:910$i \
//	    -peers "1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003,4=127.0.0.1:9004" \
//	    -keys keys.json -n 4 -t 1 -sessions 2 &
//	done
//	dkgnode client -addr 127.0.0.1:9101 -key 1 -sign "hello" -decrypt -beacon 3
//
// `run` prints a JSON document with the public key and the node's
// share when the DKG completes. `serve` multiplexes S concurrent DKG
// sessions over one set of TCP links through the session engine,
// prints one JSON line per completed session, accepts further
// `start <session-id>` requests on stdin, and exits non-zero if any
// requested session has not completed within -timeout. Every command
// is built on the hybriddkg façade; the protocol internals stay
// internal.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers for -pprof
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"hybriddkg"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dkgnode <keygen|run|serve|client|top> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "run":
		err = runNode(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	case "client":
		err = client(os.Args[2:])
	case "top":
		err = top(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dkgnode:", err)
		os.Exit(1)
	}
}

// keyFile is the operator-distributed key directory. In a real
// deployment each node receives only its own private key plus all
// public keys (the paper's certificate model, §2.3); the single file
// keeps the demo simple.
type keyFile struct {
	Scheme string     `json:"scheme"`
	Secret string     `json:"transportSecret"`
	Nodes  []keyEntry `json:"nodes"`
}

type keyEntry struct {
	ID   int64  `json:"id"`
	Pub  string `json:"pub"`
	Priv string `json:"priv"`
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 4, "number of nodes")
	schemeName := fs.String("scheme", "ed25519", "signature scheme")
	out := fs.String("out", "keys.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rings, err := hybriddkg.NewKeyRings(*n, *schemeName)
	if err != nil {
		return err
	}
	kf := keyFile{
		Scheme: *schemeName,
		Secret: hex.EncodeToString(rings[0].TransportSecret),
	}
	for i, ring := range rings {
		id := int64(i + 1)
		kf.Nodes = append(kf.Nodes, keyEntry{
			ID:   id,
			Pub:  hex.EncodeToString(ring.Public[hybriddkg.NodeID(id)]),
			Priv: hex.EncodeToString(ring.Private),
		})
	}
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, scheme %s)\n", *out, *n, *schemeName)
	return nil
}

// loadKeyRing reads the key directory file and assembles this node's
// authentication material.
func loadKeyRing(path string, self int64) (hybriddkg.KeyRing, error) {
	var ring hybriddkg.KeyRing
	data, err := os.ReadFile(path)
	if err != nil {
		return ring, err
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return ring, fmt.Errorf("parse %s: %w", path, err)
	}
	ring.Scheme = kf.Scheme
	ring.Public = make(map[hybriddkg.NodeID][]byte, len(kf.Nodes))
	for _, e := range kf.Nodes {
		pub, err := hex.DecodeString(e.Pub)
		if err != nil {
			return ring, err
		}
		ring.Public[hybriddkg.NodeID(e.ID)] = pub
		if e.ID == self {
			if ring.Private, err = hex.DecodeString(e.Priv); err != nil {
				return ring, err
			}
		}
	}
	if ring.Private == nil {
		return ring, fmt.Errorf("no private key for node %d in %s", self, path)
	}
	if ring.TransportSecret, err = hex.DecodeString(kf.Secret); err != nil || len(ring.TransportSecret) == 0 {
		return ring, fmt.Errorf("bad transport secret in %s", path)
	}
	return ring, nil
}

// clusterFlags bundles the flags shared by the run and serve
// subcommands: node identity, cluster shape, key material, peer
// directory and wire-format selection.
type clusterFlags struct {
	id        *int64
	listen    *string
	peersSpec *string
	keysPath  *string
	n, t, f   *int
	groupName *string
	timeout   *time.Duration
	leader    *int64
	wireV1    *bool
	certs     *bool
}

func newClusterFlags(fs *flag.FlagSet) *clusterFlags {
	return &clusterFlags{
		id:        fs.Int64("id", 0, "this node's index (1-based)"),
		listen:    fs.String("listen", "", "listen address host:port"),
		peersSpec: fs.String("peers", "", "comma-separated id=host:port list for all nodes"),
		keysPath:  fs.String("keys", "keys.json", "key directory file from `dkgnode keygen`"),
		n:         fs.Int("n", 0, "group size"),
		t:         fs.Int("t", 0, "Byzantine threshold"),
		f:         fs.Int("f", 0, "crash limit"),
		groupName: fs.String("group", "test256", "discrete-log parameter set"),
		timeout:   fs.Duration("timeout", 5*time.Minute, "overall deadline"),
		leader:    fs.Int64("leader", 1, "initial leader index"),
		wireV1: fs.Bool("wire-v1", false,
			"send legacy wire format v1 (no coalescing, no compressed or dedup'd commitments); v2 frames are still decoded"),
		certs: fs.Bool("certificates", false,
			"replace echo/ready floods with relay-assembled quorum certificates (subquadratic messaging at large n; falls back to flooding on certificate timeout)"),
	}
}

// serverConfig validates the parsed flags and assembles the façade
// server configuration plus its protocol options.
func (c *clusterFlags) serverConfig() (hybriddkg.ServerConfig, []hybriddkg.Option, error) {
	var cfg hybriddkg.ServerConfig
	if *c.id < 1 || *c.listen == "" || *c.peersSpec == "" || *c.n == 0 {
		return cfg, nil, fmt.Errorf("missing -id/-listen/-peers/-n")
	}
	ring, err := loadKeyRing(*c.keysPath, *c.id)
	if err != nil {
		return cfg, nil, err
	}
	peers, err := parsePeers(*c.peersSpec)
	if err != nil {
		return cfg, nil, err
	}
	cfg = hybriddkg.ServerConfig{
		Self:          hybriddkg.NodeID(*c.id),
		Roster:        hybriddkg.Roster{N: *c.n, T: *c.t, F: *c.f},
		Listen:        *c.listen,
		Peers:         peers,
		Keys:          ring,
		InitialLeader: hybriddkg.NodeID(*c.leader),
	}
	opts := []hybriddkg.Option{hybriddkg.WithGroup(*c.groupName)}
	if *c.wireV1 {
		opts = append(opts, hybriddkg.WithLegacyWireV1())
	} else {
		opts = append(opts, hybriddkg.WithDedupDealings(), hybriddkg.WithCompressedWire())
	}
	if *c.certs {
		opts = append(opts, hybriddkg.WithCertificates())
	}
	return cfg, opts, nil
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := newClusterFlags(fs)
	tau := fs.Uint64("tau", 1, "session counter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, opts, err := cf.serverConfig()
	if err != nil {
		return err
	}
	srv, err := hybriddkg.Serve(cfg, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Start(*tau)
	fmt.Fprintf(os.Stderr, "node %d listening on %s, session %d, waiting for DKG…\n", *cf.id, srv.Addr(), *tau)

	select {
	case ev := <-srv.Events():
		out := map[string]any{
			"node":      *cf.id,
			"session":   ev.Session,
			"finalView": ev.FinalView,
			"publicKey": ev.PublicKey.String(),
			"share":     ev.Share.Text(16),
			"qset":      ev.Q,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case fl := <-srv.Failures():
		return fmt.Errorf("session %d: %w", fl.Session, fl.Err)
	case <-time.After(*cf.timeout):
		return fmt.Errorf("timed out after %v", *cf.timeout)
	}
}

// serve runs the long-running session-multiplexed service: S initial
// DKG sessions through the engine over one transport endpoint, plus
// any sessions requested later via `start <id>` lines on stdin. It
// exits zero once every requested session completed, non-zero on the
// deadline or a failed session. With -client-listen the node also
// serves the threshold data plane to external clients.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cf := newClusterFlags(fs)
	var (
		sessions     = fs.Int("sessions", 1, "number of initial concurrent DKG sessions")
		base         = fs.Uint64("session-base", 1, "first session id (τ) to run")
		workers      = fs.Int("workers", 0, "bound on concurrently active sessions (0 = unbounded)")
		stateDir     = fs.String("state-dir", "", "durable state directory (WAL + snapshots); enables restart recovery")
		snapEvery    = fs.Int("snapshot-every", 64, "events between periodic state snapshots (with -state-dir)")
		syncEvery    = fs.Int("sync-every", 1, "fsync the WAL every N appends (with -state-dir; negative = page cache only)")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		verWorkers   = fs.Int("verify-workers", runtime.NumCPU(), "speculative-verification worker goroutines (0 = pipeline off)")
		shard        = fs.Bool("shard-sessions", true, "per-session dispatch lanes so concurrent sessions occupy multiple cores; incompatible with -state-dir (durable checkpoints need the single event loop), which forces it off with a startup warning")
		clientListen = fs.String("client-listen", "", "serve the client request protocol (sign/decrypt/beacon) on this address (empty = off)")
		linger       = fs.Bool("linger", false, "keep serving after all initial sessions complete (until -timeout or a signal); implied by -client-listen")
		metricsAddr  = fs.String("metrics-listen", "", "serve /metrics, /sessions and /keys introspection on this address (empty = telemetry off)")
		wireJSON     = fs.String("wire-stats-json", "", "additionally write the wire books as JSON to this file on shutdown (text stays on stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, opts, err := cf.serverConfig()
	if err != nil {
		return err
	}
	if *sessions < 0 || *base == 0 {
		return fmt.Errorf("bad -sessions/-session-base")
	}
	if *pprofAddr != "" {
		// Live-cluster profiling endpoint: `go tool pprof
		// http://<addr>/debug/pprof/profile` against a serving node.
		// Failure to bind is reported but not fatal — profiling must
		// never take a DKG participant down.
		//
		// With profiling requested, also sample contention: mutex
		// events at 1-in-5 and blocking events above 100µs, cheap
		// enough to leave on while serving and exactly what the
		// /debug/pprof/{mutex,block} endpoints need to be non-empty.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(int(100 * time.Microsecond))
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "node %d: pprof listen %s: %v\n", *cf.id, *pprofAddr, err)
		} else {
			fmt.Fprintf(os.Stderr, "node %d: pprof on http://%s/debug/pprof/\n", *cf.id, ln.Addr())
			go func() {
				if err := http.Serve(ln, nil); err != nil {
					fmt.Fprintf(os.Stderr, "node %d: pprof server: %v\n", *cf.id, err)
				}
			}()
		}
	}
	if *shard && *stateDir != "" {
		fmt.Fprintf(os.Stderr, "node %d: -shard-sessions disabled: durable state checkpoints require the single event loop\n", *cf.id)
		*shard = false
	}
	cfg.MaxActive = *workers
	cfg.VerifyWorkers = *verWorkers
	cfg.ShardSessions = *shard
	cfg.StateDir = *stateDir
	cfg.SnapshotEvery = *snapEvery
	cfg.SyncEvery = *syncEvery
	cfg.ClientListen = *clientListen
	cfg.MetricsListen = *metricsAddr
	srv, err := hybriddkg.Serve(cfg, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	if addr := srv.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "node %d: metrics on http://%s/metrics\n", *cf.id, addr)
	}

	id := cf.id
	expected := make(map[uint64]bool)
	initial := make(map[uint64]bool)

	// Resume journaled sessions before submitting anything new.
	// Sessions that restore as already-completed fire their events
	// during Restore, so keep draining while waiting — with more
	// restored-done sessions than channel capacity, a blocking wait
	// would deadlock the transport event loop.
	var pendingResults []hybriddkg.SessionEvent
	var pendingFailures []hybriddkg.SessionFailure
	if *stateDir != "" {
		type restoreOutcome struct {
			sids []uint64
			err  error
		}
		restoreCh := make(chan restoreOutcome, 1)
		go func() {
			sids, err := srv.Restore()
			restoreCh <- restoreOutcome{sids: sids, err: err}
		}()
		var outcome restoreOutcome
		for waiting := true; waiting; {
			select {
			case outcome = <-restoreCh:
				waiting = false
			case res := <-srv.Events():
				pendingResults = append(pendingResults, res)
			case fl := <-srv.Failures():
				pendingFailures = append(pendingFailures, fl)
			}
		}
		if outcome.err != nil {
			return fmt.Errorf("restore from %s: %w", *stateDir, outcome.err)
		}
		for _, sid := range outcome.sids {
			expected[sid] = true
			initial[sid] = true
		}
		if len(outcome.sids) > 0 {
			fmt.Fprintf(os.Stderr, "node %d: restored %d session(s) from %s\n", *id, len(outcome.sids), *stateDir)
		}
	}
	for s := 0; s < *sessions; s++ {
		sid := *base + uint64(s)
		if expected[sid] {
			continue // already resumed from durable state
		}
		srv.Start(sid)
		expected[sid] = true
		initial[sid] = true
	}
	fmt.Fprintf(os.Stderr, "node %d serving on %s: %d session(s) starting at τ=%d (workers=%d)\n",
		*id, srv.Addr(), *sessions, *base, *workers)
	if addr := srv.ClientAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "node %d: client protocol on %s\n", *id, addr)
	}

	// Graceful shutdown: on SIGTERM/SIGINT, checkpoint every live
	// session (with -state-dir), close cleanly and exit 0. Without
	// durable state or a client endpoint the signals keep their
	// default fatal behaviour — exiting 0 with in-flight sessions and
	// nothing persisted would fool supervisor restart policies.
	sigCh := make(chan os.Signal, 2)
	stayUp := *linger || *clientListen != ""
	if *stateDir != "" || stayUp {
		signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
		defer signal.Stop(sigCh)
	}

	// Session requests: `start <id>` lines on stdin.
	requests := make(chan uint64, 16)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 2 && fields[0] == "start" {
				if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil && v > 0 {
					requests <- v
				}
			}
		}
	}()

	enc := json.NewEncoder(os.Stdout)
	completed := 0
	deadline := time.After(*cf.timeout)
	// dumpWire prints the cumulative bytes-on-wire books on clean
	// shutdown: total frames/bytes, then per message type and per
	// session, so operators can compare wire-format configurations
	// across runs.
	dumpWire := func() {
		ws, ok := srv.WireStats()
		if !ok {
			return
		}
		if *wireJSON != "" {
			// Machine-readable twin of the stderr text below, for
			// harnesses that diff wire books across runs.
			if data, err := json.MarshalIndent(ws, "", "  "); err == nil {
				if err := os.WriteFile(*wireJSON, append(data, '\n'), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "node %d: wire-stats-json %s: %v\n", *id, *wireJSON, err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "node %d: wire: %d frames, %d bytes sent\n", *id, ws.Frames, ws.FrameBytes)
		types := make([]int, 0, len(ws.MsgCount))
		for tt := range ws.MsgCount {
			types = append(types, int(tt))
		}
		sort.Ints(types)
		for _, ti := range types {
			tt := hybriddkg.WireMsgType(ti)
			fmt.Fprintf(os.Stderr, "node %d: wire:   type %-12v %6d msgs %10d bytes\n",
				*id, tt, ws.MsgCount[tt], ws.MsgBytes[tt])
		}
		sids := make([]uint64, 0, len(ws.SessionBytes))
		for sid := range ws.SessionBytes {
			sids = append(sids, uint64(sid))
		}
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		for _, sv := range sids {
			sid := hybriddkg.SessionID(sv)
			fmt.Fprintf(os.Stderr, "node %d: wire:   session %d: %d frames %d bytes\n",
				*id, sv, ws.SessionFrames[sid], ws.SessionBytes[sid])
		}
	}
	handleResult := func(res hybriddkg.SessionEvent) error {
		out := map[string]any{
			"node":      *id,
			"session":   res.Session,
			"finalView": res.FinalView,
			"publicKey": res.PublicKey.String(),
			"share":     res.Share.Text(16),
			"qset":      res.Q,
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
		if expected[res.Session] {
			completed++
		}
		return nil
	}
	handleFailure := func(fl hybriddkg.SessionFailure) error {
		if initial[fl.Session] {
			// A failed initial session can never satisfy the exit
			// condition; fail fast instead of idling to -timeout.
			return fmt.Errorf("session %v failed: %w", fl.Session, fl.Err)
		}
		fmt.Fprintf(os.Stderr, "node %d: session %v rejected: %v\n", *id, fl.Session, fl.Err)
		delete(expected, fl.Session)
		return nil
	}
	// Events drained while waiting for Restore are processed first.
	for _, res := range pendingResults {
		if err := handleResult(res); err != nil {
			return err
		}
	}
	for _, fl := range pendingFailures {
		if err := handleFailure(fl); err != nil {
			return err
		}
	}
	announced := false
	for {
		if len(expected) > 0 && completed == len(expected) && !stayUp {
			fmt.Fprintf(os.Stderr, "node %d: all %d session(s) completed\n", *id, completed)
			dumpWire()
			return nil
		}
		if len(expected) > 0 && completed == len(expected) && stayUp && !announced {
			// Data-plane mode: keys are installed, keep serving
			// client requests until a signal or the deadline.
			fmt.Fprintf(os.Stderr, "node %d: all %d session(s) completed, serving data plane\n", *id, completed)
			announced = true
		}
		select {
		case res := <-srv.Events():
			if err := handleResult(res); err != nil {
				return err
			}
		case fl := <-srv.Failures():
			if err := handleFailure(fl); err != nil {
				return err
			}
		case v := <-requests:
			if expected[v] {
				continue
			}
			srv.Start(v)
			expected[v] = true
		case s := <-sigCh:
			if err := srv.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "node %d: checkpoint on %v: %v\n", *id, s, err)
			}
			st := srv.ServiceStats()
			fmt.Fprintf(os.Stderr, "node %d: %v: exiting cleanly (%d/%d sessions completed; data plane: %d requests, %d batches, %d peer items)\n",
				*id, s, completed, len(expected), st.Requests, st.Batches, st.PeerItems)
			dumpWire()
			return nil
		case <-deadline:
			if completed == len(expected) {
				// No outstanding sessions (e.g. -sessions 0 with no
				// stdin requests, or data-plane mode running out its
				// lease): the service ran out with all work done.
				fmt.Fprintf(os.Stderr, "node %d: deadline reached with all %d requested session(s) completed\n", *id, completed)
				dumpWire()
				return nil
			}
			return fmt.Errorf("timed out after %v with %d/%d sessions completed (engine: %+v)",
				*cf.timeout, completed, len(expected), srv.EngineStats())
		}
	}
}

// client exercises a serving cluster's data plane from outside: it
// holds no key material, connects to one node's -client-listen
// endpoint, requests operations under an installed key and verifies
// every result it can check publicly (signatures against the key,
// beacon outputs against their openings, decryptions by round-trip).
func client(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "a serving node's -client-listen address")
		key     = fs.Uint64("key", 1, "key (session) identifier")
		signMsg = fs.String("sign", "", "message to sign (empty = skip)")
		decrypt = fs.Bool("decrypt", false, "run an encrypt/decrypt round-trip")
		beacon  = fs.Uint64("beacon", 0, "open beacon rounds 1..N (0 = skip)")
		timeout = fs.Duration("timeout", time.Minute, "per-operation deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("missing -addr")
	}
	cl, err := hybriddkg.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	info, err := cl.KeyInfo(ctx, *key)
	if err != nil {
		return fmt.Errorf("keyinfo: %w", err)
	}
	n, t := cl.Roster()
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(map[string]any{
		"op": "keyinfo", "key": info.ID, "group": cl.GroupName(),
		"n": n, "t": t, "state": info.State.String(),
		"publicKey": info.PublicKey.String(),
	}); err != nil {
		return err
	}

	if *signMsg != "" {
		opCtx, opCancel := context.WithTimeout(context.Background(), *timeout)
		sig, err := cl.Sign(opCtx, *key, []byte(*signMsg))
		opCancel()
		if err != nil {
			return fmt.Errorf("sign: %w", err)
		}
		if !cl.Verify(info.PublicKey, []byte(*signMsg), sig) {
			return fmt.Errorf("sign: signature fails verification")
		}
		if err := enc.Encode(map[string]any{
			"op": "sign", "key": *key, "message": *signMsg,
			"r": sig.R.String(), "sigma": sig.Sigma.Text(16), "verified": true,
		}); err != nil {
			return err
		}
	}

	if *decrypt {
		plain, err := cl.RandomElement()
		if err != nil {
			return err
		}
		ct, err := cl.Encrypt(info.PublicKey, plain)
		if err != nil {
			return fmt.Errorf("encrypt: %w", err)
		}
		opCtx, opCancel := context.WithTimeout(context.Background(), *timeout)
		got, err := cl.Decrypt(opCtx, *key, ct)
		opCancel()
		if err != nil {
			return fmt.Errorf("decrypt: %w", err)
		}
		if !got.Equal(plain) {
			return fmt.Errorf("decrypt: round-trip mismatch")
		}
		if err := enc.Encode(map[string]any{
			"op": "decrypt", "key": *key, "roundTrip": true,
		}); err != nil {
			return err
		}
	}

	for round := uint64(1); round <= *beacon; round++ {
		opCtx, opCancel := context.WithTimeout(context.Background(), *timeout)
		out, err := cl.Beacon(opCtx, *key, round)
		opCancel()
		if err != nil {
			return fmt.Errorf("beacon round %d: %w", round, err)
		}
		if err := enc.Encode(map[string]any{
			"op": "beacon", "key": *key, "round": out.Round,
			"output": hex.EncodeToString(out.Output[:]), "verified": true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// top is the one-shot operator view of a serving node: it fetches the
// introspection endpoint (/sessions, /keys, /metrics) and renders the
// session table, the key table and the scalar series as aligned text.
func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "", "a serving node's -metrics-listen address")
	showAll := fs.Bool("all", false, "print every series, not just nonzero ones")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("missing -addr")
	}
	cli := &http.Client{Timeout: *timeout}
	get := func(path string) ([]byte, error) {
		resp, err := cli.Get("http://" + *addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	raw, err := get("/sessions")
	if err != nil {
		return err
	}
	var sessions []struct {
		Session   uint64 `json:"sid"`
		State     string `json:"state"`
		View      int    `json:"view"`
		Leader    int64  `json:"leader"`
		LeaderChg int    `json:"leader_changes"`
		Events    int    `json:"events"`
		LastKind  string `json:"last_kind"`
		LastWhat  string `json:"last_detail"`
	}
	if err := json.Unmarshal(raw, &sessions); err != nil {
		return fmt.Errorf("parse /sessions: %w", err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "SESSION\tSTATE\tVIEW\tLEADER\tLDRCHG\tEVENTS\tLAST\n")
	for _, s := range sessions {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%s %s\n",
			s.Session, s.State, s.View, s.Leader, s.LeaderChg, s.Events, s.LastKind, s.LastWhat)
	}
	if len(sessions) == 0 {
		fmt.Fprintf(w, "(none)\t\t\t\t\t\t\n")
	}
	w.Flush()

	raw, err = get("/keys")
	if err != nil {
		return err
	}
	var keys []struct {
		ID         uint64 `json:"id"`
		State      string `json:"state"`
		QueueDepth int    `json:"queue_depth"`
		Inflight   int    `json:"inflight"`
		Reservoir  int    `json:"nonce_reservoir"`
		Requests   uint64 `json:"requests_total"`
	}
	if err := json.Unmarshal(raw, &keys); err != nil {
		return fmt.Errorf("parse /keys: %w", err)
	}
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "KEY\tSTATE\tQUEUE\tINFLIGHT\tNONCES\tREQUESTS\n")
	for _, k := range keys {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\n",
			k.ID, k.State, k.QueueDepth, k.Inflight, k.Reservoir, k.Requests)
	}
	if len(keys) == 0 {
		fmt.Fprintf(w, "(none)\t\t\t\t\t\n")
	}
	w.Flush()

	raw, err = get("/metrics")
	if err != nil {
		return err
	}
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "SERIES\tVALUE\n")
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.Contains(line, "_bucket{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		if !*showAll && (line[sp+1:] == "0" || line[sp+1:] == "0.0") {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\n", line[:sp], line[sp+1:])
	}
	return w.Flush()
}

func parsePeers(spec string) ([]hybriddkg.PeerAddr, error) {
	var out []hybriddkg.PeerAddr
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad peer spec %q (want id=host:port)", part)
		}
		var id int64
		if _, err := fmt.Sscanf(part[:eq], "%d", &id); err != nil {
			return nil, fmt.Errorf("bad peer id in %q", part)
		}
		out = append(out, hybriddkg.PeerAddr{ID: hybriddkg.NodeID(id), Addr: part[eq+1:]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty peer list")
	}
	return out, nil
}

// Command dkgnode runs one DKG participant over real TCP — the
// deployment form of the protocol (one process per node, §7 system
// design). A cluster is prepared with `dkgnode keygen` (generates the
// signature-key directory all nodes need) and then one `dkgnode run`
// (single DKG, exit when done) or `dkgnode serve` (long-running
// session-multiplexed service) per node.
//
// Example 4-node cluster on one machine, two concurrent sessions:
//
//	dkgnode keygen -n 4 -out keys.json
//	for i in 1 2 3 4; do
//	  dkgnode serve -id $i -listen 127.0.0.1:900$i \
//	    -peers "1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003,4=127.0.0.1:9004" \
//	    -keys keys.json -n 4 -t 1 -sessions 2 &
//	done
//
// `run` prints a JSON document with the public key and the node's
// share when the DKG completes. `serve` multiplexes S concurrent DKG
// sessions over one set of TCP links through the session engine,
// prints one JSON line per completed session, accepts further
// `start <session-id>` requests on stdin, and exits non-zero if any
// requested session has not completed within -timeout.
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers for -pprof
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/engine"
	"hybriddkg/internal/group"
	"hybriddkg/internal/groupmod"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/rbc"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/store"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/verify"
	"hybriddkg/internal/vss"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dkgnode <keygen|run|serve> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "run":
		err = runNode(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dkgnode:", err)
		os.Exit(1)
	}
}

// keyFile is the operator-distributed key directory. In a real
// deployment each node receives only its own private key plus all
// public keys (the paper's certificate model, §2.3); the single file
// keeps the demo simple.
type keyFile struct {
	Scheme string     `json:"scheme"`
	Secret string     `json:"transportSecret"`
	Nodes  []keyEntry `json:"nodes"`
}

type keyEntry struct {
	ID   int64  `json:"id"`
	Pub  string `json:"pub"`
	Priv string `json:"priv"`
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 4, "number of nodes")
	schemeName := fs.String("scheme", "ed25519", "signature scheme")
	out := fs.String("out", "keys.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sig.ByName(*schemeName)
	if err != nil {
		return err
	}
	kf := keyFile{Scheme: *schemeName}
	var secret [32]byte
	if _, err := rand.Read(secret[:]); err != nil {
		return err
	}
	kf.Secret = hex.EncodeToString(secret[:])
	for i := 1; i <= *n; i++ {
		priv, pub, err := scheme.GenerateKey(rand.Reader)
		if err != nil {
			return err
		}
		kf.Nodes = append(kf.Nodes, keyEntry{
			ID:   int64(i),
			Pub:  hex.EncodeToString(pub),
			Priv: hex.EncodeToString(priv),
		})
	}
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, scheme %s)\n", *out, *n, *schemeName)
	return nil
}

// clusterFlags bundles the flags and derived state shared by the run
// and serve subcommands: node identity, cluster shape, key material,
// peer directory and wire codec.
type clusterFlags struct {
	id        *int64
	listen    *string
	peersSpec *string
	keysPath  *string
	n, t, f   *int
	groupName *string
	timeout   *time.Duration
	leader    *int64
	wireV1    *bool

	gr     *group.Group
	dir    *sig.Directory
	priv   []byte
	secret []byte
	peers  []transport.Peer
	codec  *msg.Codec
}

func newClusterFlags(fs *flag.FlagSet) *clusterFlags {
	return &clusterFlags{
		id:        fs.Int64("id", 0, "this node's index (1-based)"),
		listen:    fs.String("listen", "", "listen address host:port"),
		peersSpec: fs.String("peers", "", "comma-separated id=host:port list for all nodes"),
		keysPath:  fs.String("keys", "keys.json", "key directory file from `dkgnode keygen`"),
		n:         fs.Int("n", 0, "group size"),
		t:         fs.Int("t", 0, "Byzantine threshold"),
		f:         fs.Int("f", 0, "crash limit"),
		groupName: fs.String("group", "test256", "discrete-log parameter set"),
		timeout:   fs.Duration("timeout", 5*time.Minute, "overall deadline"),
		leader:    fs.Int64("leader", 1, "initial leader index"),
		wireV1: fs.Bool("wire-v1", false,
			"send legacy wire format v1 (no coalescing, no compressed or dedup'd commitments); v2 frames are still decoded"),
	}
}

// resolve validates the parsed flags and loads group, keys, peers and
// codec.
func (c *clusterFlags) resolve() error {
	if *c.id < 1 || *c.listen == "" || *c.peersSpec == "" || *c.n == 0 {
		return fmt.Errorf("missing -id/-listen/-peers/-n")
	}
	gr, err := group.ByName(*c.groupName)
	if err != nil {
		return err
	}
	_, dir, priv, secret, err := loadKeys(*c.keysPath, *c.id)
	if err != nil {
		return err
	}
	peers, err := parsePeers(*c.peersSpec)
	if err != nil {
		return err
	}
	codec, err := buildCodec(gr)
	if err != nil {
		return err
	}
	c.gr, c.dir, c.priv, c.secret, c.peers, c.codec = gr, dir, priv, secret, peers, codec
	return nil
}

// transportConfig assembles the shared transport configuration.
func (c *clusterFlags) transportConfig(h transport.Handler) transport.Config {
	return transport.Config{
		Self:      msg.NodeID(*c.id),
		Listen:    *c.listen,
		Peers:     c.peers,
		Codec:     c.codec,
		Secret:    c.secret,
		Handler:   h,
		TimerUnit: time.Millisecond,
		Coalesce:  !*c.wireV1,
	}
}

// dkgParams assembles the shared protocol parameters.
func (c *clusterFlags) dkgParams() dkg.Params {
	return dkg.Params{
		Group:          c.gr,
		N:              *c.n,
		T:              *c.t,
		F:              *c.f,
		DedupDealings:  !*c.wireV1,
		CompressedWire: !*c.wireV1,
		Directory:      c.dir,
		SignKey:        c.priv,
		InitialLeader:  msg.NodeID(*c.leader),
		TimeoutBase:    10_000, // 10s at 1ms/unit before first leader change
	}
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := newClusterFlags(fs)
	tau := fs.Uint64("tau", 1, "session counter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cf.resolve(); err != nil {
		return err
	}

	done := make(chan dkg.CompletedEvent, 1)
	startErr := make(chan error, 1)
	relay := &lateHandler{}
	tnode, err := transport.Listen(cf.transportConfig(relay))
	if err != nil {
		return err
	}
	defer tnode.Close()

	node, err := dkg.NewNode(cf.dkgParams(), *tau, msg.NodeID(*cf.id), tnode, dkg.Options{
		OnCompleted: func(ev dkg.CompletedEvent) {
			select {
			case done <- ev:
			default:
			}
		},
	})
	if err != nil {
		return err
	}
	relay.set(node)
	tnode.Do(func() {
		if err := node.Start(rand.Reader); err != nil {
			startErr <- fmt.Errorf("start: %w", err)
		}
	})
	fmt.Fprintf(os.Stderr, "node %d listening on %s, session %d, waiting for DKG…\n", *cf.id, tnode.Addr(), *tau)

	select {
	case ev := <-done:
		out := map[string]any{
			"node":      *cf.id,
			"session":   ev.Tau,
			"finalView": ev.FinalView,
			"publicKey": ev.PublicKey.String(),
			"share":     ev.Share.Text(16),
			"qset":      ev.Q,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case err := <-startErr:
		return err
	case <-time.After(*cf.timeout):
		return fmt.Errorf("timed out after %v", *cf.timeout)
	}
}

// buildCodec registers every protocol decoder.
func buildCodec(gr *group.Group) (*msg.Codec, error) {
	codec := msg.NewCodec()
	if err := vss.RegisterCodec(codec, gr); err != nil {
		return nil, err
	}
	if err := dkg.RegisterCodec(codec); err != nil {
		return nil, err
	}
	if err := rbc.RegisterCodec(codec); err != nil {
		return nil, err
	}
	if err := proactive.RegisterCodec(codec); err != nil {
		return nil, err
	}
	if err := groupmod.RegisterCodec(codec, gr); err != nil {
		return nil, err
	}
	return codec, nil
}

// sessionResult is one completed session's output line.
type sessionResult struct {
	sid msg.SessionID
	ev  *dkg.CompletedEvent
}

// sessionFailure is a session the engine could not run.
type sessionFailure struct {
	sid msg.SessionID
	err error
}

// serve runs the long-running session-multiplexed service: S initial
// DKG sessions through the engine over one transport endpoint, plus
// any sessions requested later via `start <id>` lines on stdin. It
// exits zero once every requested session completed, non-zero on the
// deadline or a failed session.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cf := newClusterFlags(fs)
	var (
		sessions   = fs.Int("sessions", 1, "number of initial concurrent DKG sessions")
		base       = fs.Uint64("session-base", 1, "first session id (τ) to run")
		workers    = fs.Int("workers", 0, "bound on concurrently active sessions (0 = unbounded)")
		stateDir   = fs.String("state-dir", "", "durable state directory (WAL + snapshots); enables restart recovery")
		snapEvery  = fs.Int("snapshot-every", 64, "events between periodic state snapshots (with -state-dir)")
		syncEvery  = fs.Int("sync-every", 1, "fsync the WAL every N appends (with -state-dir; negative = page cache only)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		verWorkers = fs.Int("verify-workers", runtime.NumCPU(), "speculative-verification worker goroutines (0 = pipeline off)")
		shard      = fs.Bool("shard-sessions", true, "per-session dispatch lanes so concurrent sessions occupy multiple cores (forced off with -state-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cf.resolve(); err != nil {
		return err
	}
	if *sessions < 0 || *base == 0 {
		return fmt.Errorf("bad -sessions/-session-base")
	}
	if *pprofAddr != "" {
		// Live-cluster profiling endpoint: `go tool pprof
		// http://<addr>/debug/pprof/profile` against a serving node.
		// Failure to bind is reported but not fatal — profiling must
		// never take a DKG participant down.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "node %d: pprof listen %s: %v\n", *cf.id, *pprofAddr, err)
		} else {
			fmt.Fprintf(os.Stderr, "node %d: pprof on http://%s/debug/pprof/\n", *cf.id, ln.Addr())
			go func() {
				if err := http.Serve(ln, nil); err != nil {
					fmt.Fprintf(os.Stderr, "node %d: pprof server: %v\n", *cf.id, err)
				}
			}()
		}
	}
	var st *store.Store
	if *stateDir != "" {
		var err error
		if st, err = store.Open(*stateDir, store.Options{SyncEvery: *syncEvery}); err != nil {
			return err
		}
		defer st.Close()
	}
	// One verifier for all sessions: the directory memoizes signature
	// verdicts, so proof sets shared across messages and sessions are
	// paid for once.
	cf.dir.EnableVerifyCache(0)
	results := make(chan sessionResult, 64)
	failures := make(chan sessionFailure, 16)
	// The verification pipeline: a worker pool speculatively verifies
	// inbound frames' crypto (point checks, signatures) while the
	// dispatch loop works through earlier traffic; the state machines'
	// inline checks then hit the shared verdict caches. Per-session
	// dispatch lanes additionally let S concurrent sessions occupy S
	// cores. Lanes are disabled alongside durable state: Checkpoint
	// and Restore snapshot runners from the main loop and must not race
	// concurrently dispatching lanes.
	tcfg := cf.transportConfig(nil)
	var vpool *verify.Pool
	var vcache *verify.Cache
	if *verWorkers > 0 {
		vpool = verify.NewPool(*verWorkers)
		vcache = verify.NewCache(0)
		spec := verify.NewSpeculator(vpool, vcache, cf.dir, msg.NodeID(*cf.id))
		tcfg.Observer = func(_ msg.SessionID, from msg.NodeID, body msg.Body) {
			spec.Observe(from, body)
		}
		// One parallelism budget: the pool's workers (plus session
		// lanes) already aim to saturate the cores, so the group
		// kernels' own window fan-out would only oversubscribe the
		// scheduler mid-flood. Keep multi-exps sequential per call;
		// concurrency comes from the pipeline's task level.
		group.SetParallelism(1)
	}
	if *shard && *stateDir != "" {
		fmt.Fprintf(os.Stderr, "node %d: -shard-sessions disabled: durable state checkpoints require the single event loop\n", *cf.id)
		*shard = false
	}
	tcfg.ShardSessions = *shard
	tnode, err := transport.Listen(tcfg)
	if err != nil {
		if vpool != nil {
			vpool.Close()
		}
		return err
	}
	defer tnode.Close()
	// The engine's completion/failure callbacks run on the transport
	// event loop and send to the channels above; once serve returns,
	// keep draining them so the deferred Close (which waits for the
	// event loop) cannot deadlock behind a full channel. Registered
	// after the Close defer, so the drainer is live while Close runs.
	defer func() {
		go func() {
			for {
				select {
				case <-results:
				case <-failures:
				}
			}
		}()
	}()

	id := cf.id
	timeout := cf.timeout
	params := cf.dkgParams()
	if vcache != nil {
		params.Verdicts = vcache
		params.Parallel = vpool
	}
	cfg := engine.Config{
		Fabric: engine.NewTransportFabric(tnode),
		Factory: func(sid msg.SessionID, rt engine.Runtime) (engine.Runner, error) {
			return dkg.NewNode(params, uint64(sid), msg.NodeID(*id), rt, dkg.Options{})
		},
		Start: func(sid msg.SessionID, r engine.Runner) error {
			return r.(*dkg.Node).Start(rand.Reader)
		},
		MaxActive:     *workers,
		KeepCompleted: true,
		OnCompleted: func(sid msg.SessionID, r engine.Runner) {
			results <- sessionResult{sid: sid, ev: r.(*dkg.Node).Result()}
		},
		OnFailed: func(sid msg.SessionID, err error) {
			failures <- sessionFailure{sid: sid, err: err}
		},
	}
	if st != nil {
		cfg.Journal = st
		cfg.Codec = cf.codec
		cfg.Self = msg.NodeID(*id)
		cfg.SnapshotEvery = *snapEvery
		cfg.RestoreRunner = func(sid msg.SessionID, rt engine.Runtime, snap []byte) (engine.Runner, error) {
			return dkg.RestoreNode(params, uint64(sid), msg.NodeID(*id), rt, dkg.Options{}, cf.codec, snap)
		}
		// Completed sessions keep serving protocol-level help requests
		// (§5.3): a crashed peer that restarts after we finished still
		// needs our retransmissions to complete its own session.
		cfg.LingerCompleted = true
	}
	if vpool != nil {
		// The engine owns the pool's lifecycle: its Close joins the
		// workers, so serve can never leak verification goroutines.
		cfg.VerifyPool = vpool
	}
	eng, err := engine.New(cfg)
	if err != nil {
		if vpool != nil {
			vpool.Close()
		}
		return err
	}
	defer eng.Close()

	// Submissions run on the transport event loop (the engine shares
	// the protocol nodes' single-threaded discipline). The main
	// goroutine never blocks on the loop — it must stay free to drain
	// the results channel, which the loop's completion callbacks feed
	// — so submission errors come back through the failures channel
	// like any other activation failure.
	submit := func(sid msg.SessionID) {
		tnode.Do(func() {
			if err := eng.Submit(sid); err != nil {
				failures <- sessionFailure{sid: sid, err: err}
			}
		})
	}
	expected := make(map[msg.SessionID]bool)
	initial := make(map[msg.SessionID]bool)

	// Resume journaled sessions before submitting anything new. The
	// restore runs on the transport event loop (like every engine
	// call); sessions that restore as already-completed fire their
	// completion callbacks during Restore, so keep draining the
	// channels while waiting — with more restored-done sessions than
	// channel capacity, a blocking wait would deadlock the event loop.
	var pendingResults []sessionResult
	var pendingFailures []sessionFailure
	if st != nil {
		type restoreOutcome struct {
			sids []msg.SessionID
			err  error
		}
		restoreCh := make(chan restoreOutcome, 1)
		tnode.Do(func() {
			sids, err := eng.Restore()
			restoreCh <- restoreOutcome{sids: sids, err: err}
		})
		var outcome restoreOutcome
		for waiting := true; waiting; {
			select {
			case outcome = <-restoreCh:
				waiting = false
			case res := <-results:
				pendingResults = append(pendingResults, res)
			case fl := <-failures:
				pendingFailures = append(pendingFailures, fl)
			}
		}
		if outcome.err != nil {
			return fmt.Errorf("restore from %s: %w", *stateDir, outcome.err)
		}
		for _, sid := range outcome.sids {
			expected[sid] = true
			initial[sid] = true
		}
		if len(outcome.sids) > 0 {
			fmt.Fprintf(os.Stderr, "node %d: restored %d session(s) from %s\n", *id, len(outcome.sids), *stateDir)
		}
	}
	for s := 0; s < *sessions; s++ {
		sid := msg.SessionID(*base + uint64(s))
		if expected[sid] {
			continue // already resumed from durable state
		}
		submit(sid)
		expected[sid] = true
		initial[sid] = true
	}
	fmt.Fprintf(os.Stderr, "node %d serving on %s: %d session(s) starting at τ=%d (workers=%d)\n",
		*id, tnode.Addr(), *sessions, *base, *workers)

	// Graceful shutdown, only meaningful with durable state: on
	// SIGTERM/SIGINT, checkpoint every live session, fsync the state
	// directory, close the transport cleanly and exit 0 — the next
	// incarnation resumes from disk. Without -state-dir the signals
	// keep their default fatal behaviour: exiting 0 with in-flight
	// sessions and nothing persisted would fool supervisor restart
	// policies into treating the loss as a clean success.
	sigCh := make(chan os.Signal, 2)
	if st != nil {
		signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
		defer signal.Stop(sigCh)
	}

	// Session requests: `start <id>` lines on stdin.
	requests := make(chan uint64, 16)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 2 && fields[0] == "start" {
				if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil && v > 0 {
					requests <- v
				}
			}
		}
	}()

	enc := json.NewEncoder(os.Stdout)
	completed := 0
	deadline := time.After(*timeout)
	// dumpWire prints the cumulative bytes-on-wire books on clean
	// shutdown: total frames/bytes, then per message type and per
	// session, so operators can compare wire-format configurations
	// across runs.
	dumpWire := func() {
		ws, ok := eng.WireStats()
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "node %d: wire: %d frames, %d bytes sent\n", *id, ws.Frames, ws.FrameBytes)
		types := make([]int, 0, len(ws.MsgCount))
		for tt := range ws.MsgCount {
			types = append(types, int(tt))
		}
		sort.Ints(types)
		for _, ti := range types {
			tt := msg.Type(ti)
			fmt.Fprintf(os.Stderr, "node %d: wire:   type %-12s %6d msgs %10d bytes\n",
				*id, tt, ws.MsgCount[tt], ws.MsgBytes[tt])
		}
		sids := make([]uint64, 0, len(ws.SessionBytes))
		for sid := range ws.SessionBytes {
			sids = append(sids, uint64(sid))
		}
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		for _, sv := range sids {
			sid := msg.SessionID(sv)
			fmt.Fprintf(os.Stderr, "node %d: wire:   session %d: %d frames %d bytes\n",
				*id, sv, ws.SessionFrames[sid], ws.SessionBytes[sid])
		}
	}
	handleResult := func(res sessionResult) error {
		out := map[string]any{
			"node":      *id,
			"session":   uint64(res.sid),
			"finalView": res.ev.FinalView,
			"publicKey": res.ev.PublicKey.String(),
			"share":     res.ev.Share.Text(16),
			"qset":      res.ev.Q,
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
		if expected[res.sid] {
			completed++
		}
		return nil
	}
	handleFailure := func(fl sessionFailure) error {
		if initial[fl.sid] {
			// A failed initial session can never satisfy the exit
			// condition; fail fast instead of idling to -timeout.
			return fmt.Errorf("session %v failed: %w", fl.sid, fl.err)
		}
		fmt.Fprintf(os.Stderr, "node %d: session %v rejected: %v\n", *id, fl.sid, fl.err)
		delete(expected, fl.sid)
		return nil
	}
	// Events drained while waiting for Restore are processed first.
	for _, res := range pendingResults {
		if err := handleResult(res); err != nil {
			return err
		}
	}
	for _, fl := range pendingFailures {
		if err := handleFailure(fl); err != nil {
			return err
		}
	}
	for {
		if len(expected) > 0 && completed == len(expected) {
			fmt.Fprintf(os.Stderr, "node %d: all %d session(s) completed\n", *id, completed)
			dumpWire()
			return nil
		}
		select {
		case res := <-results:
			if err := handleResult(res); err != nil {
				return err
			}
		case fl := <-failures:
			if err := handleFailure(fl); err != nil {
				return err
			}
		case v := <-requests:
			sid := msg.SessionID(v)
			if expected[sid] {
				continue
			}
			submit(sid)
			expected[sid] = true
		case s := <-sigCh:
			ckptCh := make(chan error, 1)
			tnode.Do(func() { ckptCh <- eng.Checkpoint() })
			if err := <-ckptCh; err != nil {
				fmt.Fprintf(os.Stderr, "node %d: checkpoint on %v: %v\n", *id, s, err)
			}
			if st != nil {
				if err := st.Sync(); err != nil {
					fmt.Fprintf(os.Stderr, "node %d: state sync on %v: %v\n", *id, s, err)
				}
			}
			fmt.Fprintf(os.Stderr, "node %d: %v: state flushed (%d/%d sessions completed), exiting cleanly\n",
				*id, s, completed, len(expected))
			dumpWire()
			return nil
		case <-deadline:
			if completed == len(expected) {
				// No outstanding sessions (e.g. -sessions 0 with no
				// stdin requests): the service simply ran out its
				// lease with all requested work done.
				fmt.Fprintf(os.Stderr, "node %d: deadline reached with all %d requested session(s) completed\n", *id, completed)
				dumpWire()
				return nil
			}
			st := eng.Stats()
			return fmt.Errorf("timed out after %v with %d/%d sessions completed (engine: %+v)",
				*timeout, completed, len(expected), st)
		}
	}
}

// lateHandler lets the transport start before the protocol node
// exists.
type lateHandler struct {
	node *dkg.Node
}

func (h *lateHandler) set(node *dkg.Node) { h.node = node }
func (h *lateHandler) HandleMessage(from msg.NodeID, body msg.Body) {
	if h.node != nil {
		h.node.Handle(from, body)
	}
}
func (h *lateHandler) HandleTimer(id uint64) {
	if h.node != nil {
		h.node.HandleTimer(id)
	}
}
func (h *lateHandler) HandleRecover() {
	if h.node != nil {
		h.node.HandleRecover()
	}
}

func loadKeys(path string, self int64) (*keyFile, *sig.Directory, []byte, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	scheme, err := sig.ByName(kf.Scheme)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dir := sig.NewDirectory(scheme)
	var priv []byte
	for _, e := range kf.Nodes {
		pub, err := hex.DecodeString(e.Pub)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := dir.Add(e.ID, pub); err != nil {
			return nil, nil, nil, nil, err
		}
		if e.ID == self {
			priv, err = hex.DecodeString(e.Priv)
			if err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	if priv == nil {
		return nil, nil, nil, nil, fmt.Errorf("no private key for node %d in %s", self, path)
	}
	secret, err := hex.DecodeString(kf.Secret)
	if err != nil || len(secret) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("bad transport secret in %s", path)
	}
	return &kf, dir, priv, secret, nil
}

func parsePeers(spec string) ([]transport.Peer, error) {
	var out []transport.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad peer spec %q (want id=host:port)", part)
		}
		var id int64
		if _, err := fmt.Sscanf(part[:eq], "%d", &id); err != nil {
			return nil, fmt.Errorf("bad peer id in %q", part)
		}
		out = append(out, transport.Peer{ID: msg.NodeID(id), Addr: part[eq+1:]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty peer list")
	}
	return out, nil
}

// Command dkgnode runs one DKG participant over real TCP — the
// deployment form of the protocol (one process per node, §7 system
// design). A cluster is prepared with `dkgnode keygen` (generates the
// signature-key directory all nodes need) and then one `dkgnode run`
// per node.
//
// Example 4-node cluster on one machine:
//
//	dkgnode keygen -n 4 -out keys.json
//	for i in 1 2 3 4; do
//	  dkgnode run -id $i -listen 127.0.0.1:900$i \
//	    -peers "1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003,4=127.0.0.1:9004" \
//	    -keys keys.json -n 4 -t 1 &
//	done
//
// Each node prints a JSON document with the public key and its own
// share when the DKG completes.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybriddkg/internal/dkg"
	"hybriddkg/internal/group"
	"hybriddkg/internal/groupmod"
	"hybriddkg/internal/msg"
	"hybriddkg/internal/proactive"
	"hybriddkg/internal/rbc"
	"hybriddkg/internal/sig"
	"hybriddkg/internal/transport"
	"hybriddkg/internal/vss"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dkgnode <keygen|run> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "run":
		err = runNode(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dkgnode:", err)
		os.Exit(1)
	}
}

// keyFile is the operator-distributed key directory. In a real
// deployment each node receives only its own private key plus all
// public keys (the paper's certificate model, §2.3); the single file
// keeps the demo simple.
type keyFile struct {
	Scheme string     `json:"scheme"`
	Secret string     `json:"transportSecret"`
	Nodes  []keyEntry `json:"nodes"`
}

type keyEntry struct {
	ID   int64  `json:"id"`
	Pub  string `json:"pub"`
	Priv string `json:"priv"`
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 4, "number of nodes")
	schemeName := fs.String("scheme", "ed25519", "signature scheme")
	out := fs.String("out", "keys.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sig.ByName(*schemeName)
	if err != nil {
		return err
	}
	kf := keyFile{Scheme: *schemeName}
	var secret [32]byte
	if _, err := rand.Read(secret[:]); err != nil {
		return err
	}
	kf.Secret = hex.EncodeToString(secret[:])
	for i := 1; i <= *n; i++ {
		priv, pub, err := scheme.GenerateKey(rand.Reader)
		if err != nil {
			return err
		}
		kf.Nodes = append(kf.Nodes, keyEntry{
			ID:   int64(i),
			Pub:  hex.EncodeToString(pub),
			Priv: hex.EncodeToString(priv),
		})
	}
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, scheme %s)\n", *out, *n, *schemeName)
	return nil
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		id        = fs.Int64("id", 0, "this node's index (1-based)")
		listen    = fs.String("listen", "", "listen address host:port")
		peersSpec = fs.String("peers", "", "comma-separated id=host:port list for all nodes")
		keysPath  = fs.String("keys", "keys.json", "key directory file from `dkgnode keygen`")
		n         = fs.Int("n", 0, "group size")
		t         = fs.Int("t", 0, "Byzantine threshold")
		f         = fs.Int("f", 0, "crash limit")
		groupName = fs.String("group", "test256", "discrete-log parameter set")
		timeout   = fs.Duration("timeout", 5*time.Minute, "overall deadline")
		tau       = fs.Uint64("tau", 1, "session counter")
		leader    = fs.Int64("leader", 1, "initial leader index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 1 || *listen == "" || *peersSpec == "" || *n == 0 {
		return fmt.Errorf("missing -id/-listen/-peers/-n")
	}
	gr, err := group.ByName(*groupName)
	if err != nil {
		return err
	}
	kf, dir, priv, secret, err := loadKeys(*keysPath, *id)
	if err != nil {
		return err
	}
	_ = kf
	peers, err := parsePeers(*peersSpec)
	if err != nil {
		return err
	}
	codec := msg.NewCodec()
	if err := vss.RegisterCodec(codec, gr); err != nil {
		return err
	}
	if err := dkg.RegisterCodec(codec); err != nil {
		return err
	}
	if err := rbc.RegisterCodec(codec); err != nil {
		return err
	}
	if err := proactive.RegisterCodec(codec); err != nil {
		return err
	}
	if err := groupmod.RegisterCodec(codec, gr); err != nil {
		return err
	}

	done := make(chan dkg.CompletedEvent, 1)
	relay := &lateHandler{}
	tnode, err := transport.Listen(transport.Config{
		Self:      msg.NodeID(*id),
		Listen:    *listen,
		Peers:     peers,
		Codec:     codec,
		Secret:    secret,
		Handler:   relay,
		TimerUnit: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer tnode.Close()

	params := dkg.Params{
		Group:         gr,
		N:             *n,
		T:             *t,
		F:             *f,
		Directory:     dir,
		SignKey:       priv,
		InitialLeader: msg.NodeID(*leader),
		TimeoutBase:   10_000, // 10s at 1ms/unit before first leader change
	}
	node, err := dkg.NewNode(params, *tau, msg.NodeID(*id), tnode, dkg.Options{
		OnCompleted: func(ev dkg.CompletedEvent) {
			select {
			case done <- ev:
			default:
			}
		},
	})
	if err != nil {
		return err
	}
	relay.set(node)
	tnode.Do(func() {
		if err := node.Start(rand.Reader); err != nil {
			fmt.Fprintln(os.Stderr, "start:", err)
		}
	})
	fmt.Fprintf(os.Stderr, "node %d listening on %s, session %d, waiting for DKG…\n", *id, tnode.Addr(), *tau)

	select {
	case ev := <-done:
		out := map[string]any{
			"node":      *id,
			"session":   ev.Tau,
			"finalView": ev.FinalView,
			"publicKey": ev.PublicKey.String(),
			"share":     ev.Share.Text(16),
			"qset":      ev.Q,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case <-time.After(*timeout):
		return fmt.Errorf("timed out after %v", *timeout)
	}
}

// lateHandler lets the transport start before the protocol node
// exists.
type lateHandler struct {
	node *dkg.Node
}

func (h *lateHandler) set(node *dkg.Node) { h.node = node }
func (h *lateHandler) HandleMessage(from msg.NodeID, body msg.Body) {
	if h.node != nil {
		h.node.Handle(from, body)
	}
}
func (h *lateHandler) HandleTimer(id uint64) {
	if h.node != nil {
		h.node.HandleTimer(id)
	}
}
func (h *lateHandler) HandleRecover() {
	if h.node != nil {
		h.node.HandleRecover()
	}
}

func loadKeys(path string, self int64) (*keyFile, *sig.Directory, []byte, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	scheme, err := sig.ByName(kf.Scheme)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dir := sig.NewDirectory(scheme)
	var priv []byte
	for _, e := range kf.Nodes {
		pub, err := hex.DecodeString(e.Pub)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := dir.Add(e.ID, pub); err != nil {
			return nil, nil, nil, nil, err
		}
		if e.ID == self {
			priv, err = hex.DecodeString(e.Priv)
			if err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	if priv == nil {
		return nil, nil, nil, nil, fmt.Errorf("no private key for node %d in %s", self, path)
	}
	secret, err := hex.DecodeString(kf.Secret)
	if err != nil || len(secret) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("bad transport secret in %s", path)
	}
	return &kf, dir, priv, secret, nil
}

func parsePeers(spec string) ([]transport.Peer, error) {
	var out []transport.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad peer spec %q (want id=host:port)", part)
		}
		var id int64
		if _, err := fmt.Sscanf(part[:eq], "%d", &id); err != nil {
			return nil, fmt.Errorf("bad peer id in %q", part)
		}
		out = append(out, transport.Peer{ID: msg.NodeID(id), Addr: part[eq+1:]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty peer list")
	}
	return out, nil
}
